// Tests for the sysrle command-line tool (driven through the library entry
// point with captured streams and temp files).

#include "cli/cli.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include "baseline/simd_dispatch.hpp"
#include "bitmap/convert.hpp"
#include "bitmap/pbm_io.hpp"
#include "rle/serialize.hpp"
#include "test_util.hpp"
#include "workload/generator.hpp"
#include "workload/pcb.hpp"
#include "workload/rng.hpp"

namespace sysrle {
namespace {

struct CliRun {
  int exit_code;
  std::string out;
  std::string err;
};

CliRun cli(std::vector<std::string> args) {
  std::ostringstream out, err;
  const int code = run_cli(args, out, err);
  return {code, out.str(), err.str()};
}

std::string tmp_path(const std::string& name) {
  // Include the running test's name: ctest runs every test as its own
  // process in parallel, and shared fixture file names would let one
  // process's SetUp truncate a file another process is reading.
  const ::testing::TestInfo* info =
      ::testing::UnitTest::GetInstance()->current_test_info();
  const std::string test = info ? std::string(info->name()) + "_" : "";
  return ::testing::TempDir() + "/sysrle_cli_" + test + name;
}

class CliFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(77);
    RowGenParams p;
    p.width = 200;
    img_a_ = generate_image(rng, 10, p);
    img_b_ = img_a_;
    ErrorGenParams ep;
    ep.error_fraction = 0.05;
    for (pos_t y = 0; y < img_b_.height(); ++y) {
      Rng row_rng = rng.split();
      img_b_.set_row(y, inject_errors(row_rng, img_a_.row(y), 200, ep));
    }
    path_a_ = tmp_path("a.srl");
    path_b_ = tmp_path("b.srl");
    write_rle_file(path_a_, img_a_);
    write_rle_file(path_b_, img_b_);
  }

  RleImage img_a_{0, 0};
  RleImage img_b_{0, 0};
  std::string path_a_, path_b_;
};

TEST_F(CliFixture, HelpPrintsCommands) {
  const CliRun r = cli({"help"});
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.out.find("diff"), std::string::npos);
  EXPECT_NE(r.out.find("inspect"), std::string::npos);
  const CliRun empty = cli({});
  EXPECT_EQ(empty.exit_code, 0);
}

TEST_F(CliFixture, UnknownCommandFails) {
  const CliRun r = cli({"frobnicate"});
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.err.find("unknown command"), std::string::npos);
}

TEST_F(CliFixture, DiffPrintsCounts) {
  const CliRun r = cli({"diff", path_a_, path_b_, "--stats"});
  EXPECT_EQ(r.exit_code, 0) << r.err;
  EXPECT_NE(r.out.find("engine: systolic"), std::string::npos);
  EXPECT_NE(r.out.find("differing pixels:"), std::string::npos);
  EXPECT_NE(r.out.find("machine: iterations="), std::string::npos);
}

TEST_F(CliFixture, DiffWritesOutputFile) {
  const std::string out_path = tmp_path("diff.srl");
  const CliRun r =
      cli({"diff", path_a_, path_b_, "-o", out_path, "--canonical"});
  EXPECT_EQ(r.exit_code, 0) << r.err;
  const RleImage diff = read_rle_file(out_path);
  EXPECT_EQ(diff.width(), 200);
  EXPECT_GT(diff.stats().foreground_pixels, 0);
}

TEST_F(CliFixture, DiffEnginesAgree) {
  std::string previous;
  for (const char* engine : {"systolic", "bus", "sequential", "sweep",
                             "pixel", "adaptive"}) {
    const std::string out_path = tmp_path(std::string("diff_") + engine);
    const CliRun r = cli({"diff", path_a_, path_b_, "-o", out_path,
                          "--canonical", "--engine", engine});
    ASSERT_EQ(r.exit_code, 0) << engine << ": " << r.err;
    std::ifstream in(out_path, std::ios::binary);
    std::stringstream buf;
    buf << in.rdbuf();
    if (!previous.empty()) {
      EXPECT_EQ(buf.str(), previous) << engine;
    }
    previous = buf.str();
  }
}

TEST_F(CliFixture, DiffRejectsBadEngine) {
  const CliRun r = cli({"diff", path_a_, path_b_, "--engine", "magic"});
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.err.find("unknown engine"), std::string::npos);
}

TEST_F(CliFixture, ThreadsFlagValidation) {
  // 0, negative, and garbage all fail with the standard one-line diagnostic
  // naming the flag; "auto" is spelt by omitting the flag, not with 0.
  for (const char* bad : {"0", "-3", "banana"}) {
    const CliRun r = cli({"diff", path_a_, path_b_, "--threads", bad});
    EXPECT_EQ(r.exit_code, 2) << bad;
    EXPECT_TRUE(r.out.empty()) << bad;
    EXPECT_NE(r.err.find("--threads"), std::string::npos) << bad;
    EXPECT_EQ(std::count(r.err.begin(), r.err.end(), '\n'), 1) << bad;
  }
  // An explicit thread count is honoured on every diff-running command.
  EXPECT_EQ(cli({"diff", path_a_, path_b_, "--threads", "2"}).exit_code, 0);
  EXPECT_EQ(cli({"inspect", path_a_, path_a_, "--threads", "2"}).exit_code, 0);
  EXPECT_EQ(cli({"perf", "--rows", "8", "--width", "128", "--threads", "2"})
                .exit_code,
            0);
}

TEST_F(CliFixture, DiffJsonReportsParallelismAndEngineMix) {
  const CliRun r = cli({"diff", path_a_, path_b_, "--json", "--engine",
                        "adaptive", "--threads", "2"});
  EXPECT_EQ(r.exit_code, 0) << r.err;
  const sysrle::testing::JsonValue root = sysrle::testing::parse_json(r.out);
  EXPECT_EQ(root.at("engine").string, "adaptive");
  EXPECT_GE(root.at("threads_used").number, 1.0);
  EXPECT_LE(root.at("threads_used").number, 2.0);
  EXPECT_GE(root.at("parallel_rows").number, 0.0);
  const sysrle::testing::JsonValue& mix = root.at("adaptive");
  // Every row routes somewhere; the two tallies cover the image exactly.
  EXPECT_DOUBLE_EQ(mix.at("picked_systolic").number +
                       mix.at("picked_sequential").number,
                   10.0);  // fixture images are 10 rows tall
}

TEST_F(CliFixture, DiffThreadedOutputMatchesSerial) {
  const std::string serial_path = tmp_path("diff_serial.srl");
  const std::string threaded_path = tmp_path("diff_threaded.srl");
  ASSERT_EQ(cli({"diff", path_a_, path_b_, "-o", serial_path, "--threads",
                 "1"})
                .exit_code,
            0);
  ASSERT_EQ(cli({"diff", path_a_, path_b_, "-o", threaded_path, "--threads",
                 "4"})
                .exit_code,
            0);
  const auto read_file = [](const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    std::stringstream buf;
    buf << in.rdbuf();
    return buf.str();
  };
  EXPECT_EQ(read_file(serial_path), read_file(threaded_path));
}

TEST_F(CliFixture, InspectExitCodesReflectVerdict) {
  const CliRun clean = cli({"inspect", path_a_, path_a_});
  EXPECT_EQ(clean.exit_code, 0) << clean.err;
  EXPECT_NE(clean.out.find("PASS"), std::string::npos);
  const CliRun dirty = cli({"inspect", path_a_, path_b_});
  EXPECT_EQ(dirty.exit_code, 1);
  EXPECT_NE(dirty.out.find("FAIL"), std::string::npos);
}

TEST_F(CliFixture, GenPcbAndStats) {
  const std::string board = tmp_path("board.pbm");
  const CliRun g = cli({"gen", "pcb", board, "--seed", "7", "--width", "256",
                        "--height", "64", "--defects", "3"});
  EXPECT_EQ(g.exit_code, 0) << g.err;
  EXPECT_NE(g.out.find("injected:"), std::string::npos);
  const CliRun s = cli({"stats", board});
  EXPECT_EQ(s.exit_code, 0) << s.err;
  EXPECT_NE(s.out.find("size: 256 x 64"), std::string::npos);
  EXPECT_NE(s.out.find("total runs:"), std::string::npos);
}

TEST_F(CliFixture, GenRandomRespectsDensity) {
  const std::string path = tmp_path("random.srl");
  const CliRun g = cli({"gen", "random", path, "--width", "5000", "--height",
                        "4", "--density", "0.5", "--seed", "3"});
  EXPECT_EQ(g.exit_code, 0) << g.err;
  const RleImage img = read_rle_file(path);
  EXPECT_NEAR(img.stats().density, 0.5, 0.08);
}

TEST_F(CliFixture, ConvertRoundTripsThroughPbm) {
  const std::string pbm = tmp_path("conv.pbm");
  const std::string back = tmp_path("conv_back.srl");
  EXPECT_EQ(cli({"convert", path_a_, pbm}).exit_code, 0);
  EXPECT_EQ(cli({"convert", pbm, back}).exit_code, 0);
  EXPECT_EQ(read_rle_file(back), img_a_);
}

TEST_F(CliFixture, ConvertTextRleExtension) {
  const std::string text = tmp_path("conv.srlt");
  EXPECT_EQ(cli({"convert", path_a_, text}).exit_code, 0);
  std::ifstream in(text, std::ios::binary);
  char magic[4] = {};
  in.read(magic, 4);
  EXPECT_EQ(std::string(magic, 4), "SRLT");
  EXPECT_EQ(read_rle_file(text), img_a_);
}

TEST_F(CliFixture, TracePrintsFigure3) {
  const CliRun r = cli({"trace", "10,3 16,2 23,2 27,3",
                        "3,4 8,5 15,5 23,2 27,4", "--cells", "6"});
  EXPECT_EQ(r.exit_code, 0) << r.err;
  EXPECT_NE(r.out.find("Initial"), std::string::npos);
  EXPECT_NE(r.out.find("3.1"), std::string::npos);
  EXPECT_NE(r.out.find("difference : (3,4) (8,2) (15,1) (18,2) (30,1)"),
            std::string::npos);
  EXPECT_NE(r.out.find("iterations : 3"), std::string::npos);
}

TEST_F(CliFixture, TraceRejectsMalformedRuns) {
  EXPECT_EQ(cli({"trace", "10;3", "3,4"}).exit_code, 2);
  EXPECT_EQ(cli({"trace", "10,3"}).exit_code, 2);  // arity
  // Overlapping runs are invalid input rows.
  EXPECT_EQ(cli({"trace", "1,5 3,2", "0,1"}).exit_code, 2);
}

TEST_F(CliFixture, VerilogEmitsThreeFiles) {
  const std::string dir = tmp_path("rtl");
  const CliRun r = cli({"verilog", dir, "--bits", "16", "--cells", "8",
                        "--prefix", "unit"});
  EXPECT_EQ(r.exit_code, 0) << r.err;
  for (const char* name : {"/unit_cell.v", "/unit_array.v", "/unit_tb.v"}) {
    std::ifstream f(dir + name);
    EXPECT_TRUE(f.is_open()) << name;
    std::stringstream buf;
    buf << f.rdbuf();
    EXPECT_NE(buf.str().find("module unit_"), std::string::npos) << name;
  }
  // Parameter plumbed through.
  std::ifstream cell(dir + "/unit_cell.v");
  std::stringstream buf;
  buf << cell.rdbuf();
  EXPECT_NE(buf.str().find("parameter W = 16"), std::string::npos);
}

TEST_F(CliFixture, VerilogUsageErrors) {
  EXPECT_EQ(cli({"verilog"}).exit_code, 2);
  EXPECT_EQ(cli({"verilog", tmp_path("rtl2"), "--bits", "1"}).exit_code, 2);
}

TEST_F(CliFixture, MissingFileReportsError) {
  const CliRun r = cli({"stats", tmp_path("nope.srl")});
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.err.find("cannot open"), std::string::npos);
}

TEST_F(CliFixture, UsageErrorsOnWrongArity) {
  EXPECT_EQ(cli({"diff", path_a_}).exit_code, 2);
  EXPECT_EQ(cli({"convert", path_a_}).exit_code, 2);
  EXPECT_EQ(cli({"gen", "pcb"}).exit_code, 2);
  EXPECT_EQ(cli({"gen", "volcano", tmp_path("x")}).exit_code, 2);
}

TEST_F(CliFixture, CampaignRunsAndReportsContainment) {
  const CliRun r =
      cli({"campaign", "--rows", "2", "--width", "200", "--cell-stride", "4"});
  EXPECT_EQ(r.exit_code, 0) << r.err;
  EXPECT_NE(r.out.find("all faults contained"), std::string::npos);
  EXPECT_NE(r.out.find("no-swap"), std::string::npos);
  EXPECT_NE(r.out.find("intermittent"), std::string::npos);
  EXPECT_NE(r.out.find("total"), std::string::npos);
}

TEST_F(CliFixture, CampaignCsvAndFiltersWork) {
  const CliRun r = cli({"campaign", "--rows", "1", "--width", "200", "--kind",
                        "drop-shift", "--model", "permanent", "--cell-stride",
                        "2", "--csv"});
  EXPECT_EQ(r.exit_code, 0) << r.err;
  EXPECT_NE(r.out.find("fault,model,trials"), std::string::npos);
  EXPECT_NE(r.out.find("drop-shift,permanent"), std::string::npos);
  EXPECT_EQ(r.out.find("no-swap"), std::string::npos);
}

TEST_F(CliFixture, CampaignRejectsBadFlags) {
  EXPECT_EQ(cli({"campaign", "--kind", "gremlins"}).exit_code, 2);
  EXPECT_EQ(cli({"campaign", "--model", "sometimes"}).exit_code, 2);
  EXPECT_EQ(cli({"campaign", "--rows", "0"}).exit_code, 2);
  EXPECT_EQ(cli({"campaign", "--error", "1.5"}).exit_code, 2);
  EXPECT_EQ(cli({"campaign", "--retries", "-1"}).exit_code, 2);
  EXPECT_EQ(cli({"campaign", "--cell-stride", "0"}).exit_code, 2);
  EXPECT_EQ(cli({"campaign", "unexpected-positional"}).exit_code, 2);
}

TEST_F(CliFixture, BadNumericFlagValuesAreOneLineUsageErrors) {
  const CliRun r =
      cli({"gen", "random", tmp_path("bad.srl"), "--width", "banana"});
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_TRUE(r.out.empty());
  EXPECT_NE(r.err.find("--width"), std::string::npos);
  EXPECT_NE(r.err.find("banana"), std::string::npos);
  EXPECT_EQ(std::count(r.err.begin(), r.err.end(), '\n'), 1);

  // Trailing junk, overflow, and a flag missing its value all fail cleanly.
  EXPECT_EQ(cli({"gen", "random", tmp_path("bad.srl"), "--density", "0.5x"})
                .exit_code,
            2);
  EXPECT_EQ(cli({"inspect", path_a_, path_b_, "--align",
                 "99999999999999999999999"})
                .exit_code,
            2);
  EXPECT_EQ(cli({"diff", path_a_, path_b_, "--engine"}).exit_code, 2);
}

TEST_F(CliFixture, MalformedImageFileIsOneLineError) {
  const std::string bad = tmp_path("corrupt.srl");
  {
    std::ofstream f(bad, std::ios::binary);
    f << "SRLB garbage garbage";
  }
  const CliRun r = cli({"stats", bad});
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_TRUE(r.out.empty());
  EXPECT_NE(r.err.find("sysrle:"), std::string::npos);
  EXPECT_EQ(std::count(r.err.begin(), r.err.end(), '\n'), 1);
  EXPECT_EQ(cli({"diff", bad, path_b_}).exit_code, 2);
  EXPECT_EQ(cli({"inspect", bad, path_b_}).exit_code, 2);

  // A truncated but well-magicked file is also a clean error.
  const std::string cut = tmp_path("cut.srl");
  {
    std::ifstream in(path_a_, std::ios::binary);
    std::stringstream buf;
    buf << in.rdbuf();
    std::ofstream f(cut, std::ios::binary);
    f << buf.str().substr(0, buf.str().size() / 3);
  }
  const CliRun rc = cli({"stats", cut});
  EXPECT_EQ(rc.exit_code, 2);
  EXPECT_NE(rc.err.find("truncated"), std::string::npos);
}

// ------------------------------------------------------- telemetry + JSON

using testing::JsonValue;
using testing::parse_json;

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST_F(CliFixture, GlobalMetricsFlagWritesSnapshotFile) {
  const std::string mpath = tmp_path("metrics.json");
  const CliRun r =
      cli({"--metrics", mpath, "diff", path_a_, path_b_, "--engine",
           "systolic"});
  EXPECT_EQ(r.exit_code, 0) << r.err;
  const JsonValue root = parse_json(slurp(mpath));
  EXPECT_EQ(root.at("schema").string, "sysrle.metrics.v1");
  EXPECT_DOUBLE_EQ(root.at("counters").at("systolic.rows").number, 10.0);
  const JsonValue& iters =
      root.at("histograms").at("systolic.row_iterations");
  EXPECT_DOUBLE_EQ(iters.at("count").number, 10.0);
}

TEST_F(CliFixture, TraceOutWritesValidChromeTrace) {
  const std::string tpath = tmp_path("trace.json");
  const CliRun r = cli({"--trace-out", tpath, "diff", path_a_, path_b_});
  EXPECT_EQ(r.exit_code, 0) << r.err;
  const JsonValue root = parse_json(slurp(tpath));
  const JsonValue& events = root.at("traceEvents");
  ASSERT_GE(events.array.size(), 2u);
  EXPECT_EQ(events.array[0].at("ph").string, "M");
  double prev_ts = -1.0;
  std::size_t complete = 0;
  for (const JsonValue& e : events.array) {
    if (e.at("ph").string != "X") continue;
    ++complete;
    EXPECT_GE(e.at("ts").number, prev_ts);
    prev_ts = e.at("ts").number;
  }
  EXPECT_GE(complete, 1u);
  EXPECT_EQ(root.at("otherData").at("schema").string, "sysrle.trace.v1");
}

TEST_F(CliFixture, PerfEmitsSchemaJsonAndExportsFiles) {
  const std::string mpath = tmp_path("perf_metrics.json");
  const std::string tpath = tmp_path("perf_trace.json");
  const CliRun r = cli({"--metrics", mpath, "--trace-out", tpath, "perf",
                        "--rows", "16", "--width", "256"});
  EXPECT_EQ(r.exit_code, 0) << r.err;

  const JsonValue root = parse_json(r.out);
  EXPECT_EQ(root.at("schema").string, "sysrle.perf.v1");
  EXPECT_DOUBLE_EQ(root.at("params").at("rows").number, 16.0);
  EXPECT_DOUBLE_EQ(root.at("params").at("width").number, 256.0);
  EXPECT_DOUBLE_EQ(root.at("summary").at("rows").number, 16.0);
  EXPECT_GT(root.at("wall_time_us").number, 0.0);
  EXPECT_TRUE(root.at("observation_bound_ok").boolean);
  // The row-parallel phase reports its effective parallelism.
  const JsonValue& image = root.at("image_diff");
  EXPECT_GE(image.at("wall_time_us").number, 0.0);
  EXPECT_GE(image.at("threads_used").number, 1.0);
  EXPECT_GE(image.at("parallel_rows").number, 0.0);
  const JsonValue& iters = root.at("row_iterations");
  // Both instrumented phases (streaming + row-parallel) record per-row
  // iteration samples: 16 rows each.
  EXPECT_DOUBLE_EQ(iters.at("count").number, 32.0);
  EXPECT_GE(iters.at("p99").number, iters.at("p50").number);

  // The global flags still export alongside the stdout report.
  EXPECT_EQ(parse_json(slurp(mpath)).at("schema").string,
            "sysrle.metrics.v1");
  EXPECT_EQ(parse_json(slurp(tpath)).at("otherData").at("schema").string,
            "sysrle.trace.v1");
}

TEST_F(CliFixture, StatsJsonSchemaPinned) {
  const CliRun r = cli({"stats", path_a_, "--json"});
  EXPECT_EQ(r.exit_code, 0) << r.err;
  const JsonValue root = parse_json(r.out);
  EXPECT_EQ(root.at("schema").string, "sysrle.stats.v1");
  EXPECT_EQ(root.at("file").string, path_a_);
  EXPECT_DOUBLE_EQ(root.at("width").number, 200.0);
  EXPECT_DOUBLE_EQ(root.at("height").number, 10.0);
  EXPECT_GT(root.at("total_runs").number, 0.0);
  EXPECT_GT(root.at("compression").at("ratio").number, 0.0);
  const JsonValue& rl = root.at("run_lengths");
  EXPECT_GT(rl.at("total_runs").number, 0.0);
  EXPECT_FALSE(rl.at("buckets").array.empty());
}

TEST_F(CliFixture, DiffJsonSchemaPinned) {
  const CliRun r =
      cli({"diff", path_a_, path_b_, "--json", "--engine", "systolic"});
  EXPECT_EQ(r.exit_code, 0) << r.err;
  const JsonValue root = parse_json(r.out);
  EXPECT_EQ(root.at("schema").string, "sysrle.diff.v1");
  EXPECT_EQ(root.at("engine").string, "systolic");
  EXPECT_DOUBLE_EQ(root.at("diff").at("width").number, 200.0);
  EXPECT_GE(root.at("max_row_iterations").number, 1.0);
  EXPECT_GE(root.at("counters").at("iterations").number,
            root.at("max_row_iterations").number);
}

TEST_F(CliFixture, MissingValueForGlobalFlagIsUsageError) {
  const CliRun rm = cli({"--metrics"});
  EXPECT_EQ(rm.exit_code, 2);
  EXPECT_NE(rm.err.find("--metrics"), std::string::npos);
  const CliRun rt = cli({"--trace-out"});
  EXPECT_EQ(rt.exit_code, 2);
  EXPECT_NE(rt.err.find("--trace-out"), std::string::npos);
  const CliRun rs = cli({"--simd"});
  EXPECT_EQ(rs.exit_code, 2);
  EXPECT_NE(rs.err.find("--simd"), std::string::npos);
}

TEST_F(CliFixture, SimdFlagSelectsLevelAndReportsItInJson) {
  // Every level the host supports must run the diff and echo the level in
  // the report; identical output is pinned by the differential suite.
  for (const SimdLevel level : supported_simd_levels()) {
    const CliRun r = cli({"--simd", to_string(level), "diff", path_a_,
                          path_b_, "--json", "--engine", "sequential",
                          "--canonical"});
    EXPECT_EQ(r.exit_code, 0) << r.err;
    const JsonValue root = parse_json(r.out);
    EXPECT_EQ(root.at("simd").string, to_string(level));
    EXPECT_GT(root.at("sequential_iterations").number, 0.0);
  }
}

TEST_F(CliFixture, SimdFlagRejectsUnknownLevelAsUsageError) {
  const CliRun r = cli({"--simd", "avx512", "diff", path_a_, path_b_});
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.err.find("avx512"), std::string::npos);
  // Exactly one diagnostic line, emitted before any work happened.
  EXPECT_EQ(std::count(r.err.begin(), r.err.end(), '\n'), 1);
}

TEST_F(CliFixture, UnwritableTelemetryPathFailsFastWithOneLineDiagnostic) {
  // Fail before any work happens, not after a full run whose telemetry
  // silently vanishes.
  const std::string bad = tmp_path("no_such_dir") + "/metrics.json";
  for (const char* flag : {"--metrics", "--trace-out"}) {
    const CliRun r = cli({flag, bad, "diff", path_a_, path_b_});
    EXPECT_EQ(r.exit_code, 2) << flag;
    EXPECT_NE(r.err.find(bad), std::string::npos) << flag;
    // Exactly one diagnostic line.
    EXPECT_EQ(std::count(r.err.begin(), r.err.end(), '\n'), 1) << flag;
  }
}

std::string write_requests_file(const std::string& name,
                                const std::string& contents) {
  const std::string path = tmp_path(name);
  std::ofstream f(path);
  f << contents;
  return path;
}

TEST_F(CliFixture, ServeTextTableReportsOutcomes) {
  const std::string reqs = write_requests_file("serve_basic.txt",
                                               "# class rows width error\n"
                                               "interactive 4 200 0.02\n"
                                               "batch 4 200 0.02\n"
                                               "\n"
                                               "batch 2 100 0.0\n");
  const CliRun r = cli({"serve", "--requests", reqs, "--workers", "2"});
  EXPECT_EQ(r.exit_code, 0) << r.err;
  EXPECT_NE(r.out.find("offered"), std::string::npos);
  EXPECT_NE(r.out.find("completed"), std::string::npos);
  EXPECT_NE(r.out.find("breakers: shard0.replica0=closed"), std::string::npos);
}

TEST_F(CliFixture, ServeWorkersZeroMeansAutoAndNegativeRejected) {
  const std::string reqs =
      write_requests_file("serve_auto.txt", "batch 2 100 0.0\n");
  const CliRun r = cli({"serve", "--requests", reqs, "--workers", "0"});
  EXPECT_EQ(r.exit_code, 0) << r.err;
  EXPECT_NE(r.out.find("completed"), std::string::npos);
  const CliRun bad = cli({"serve", "--requests", reqs, "--workers", "-1"});
  EXPECT_EQ(bad.exit_code, 2);
  EXPECT_NE(bad.err.find("--workers"), std::string::npos);
}

TEST_F(CliFixture, ServeJsonSchemaPinnedAndAccounted) {
  const std::string reqs = write_requests_file(
      "serve_json.txt",
      "interactive 4 200 0.02\nbatch 4 200 0.02\nbatch 4 200 0.02\n");
  const CliRun r = cli({"serve", "--requests", reqs, "--json"});
  EXPECT_EQ(r.exit_code, 0) << r.err;
  const JsonValue root = parse_json(r.out);
  EXPECT_EQ(root.at("schema").string, "sysrle.serve.v5");
  EXPECT_DOUBLE_EQ(root.at("params").at("requests").number, 3.0);
  EXPECT_DOUBLE_EQ(root.at("params").at("shards").number, 1.0);
  EXPECT_DOUBLE_EQ(root.at("params").at("replicas").number, 1.0);
  EXPECT_DOUBLE_EQ(root.at("offered").number, 3.0);
  EXPECT_DOUBLE_EQ(root.at("admitted").number, 3.0);
  EXPECT_DOUBLE_EQ(root.at("completed").number, 3.0);
  EXPECT_DOUBLE_EQ(root.at("failed").number, 0.0);
  EXPECT_DOUBLE_EQ(root.at("shed").at("total").number, 0.0);
  EXPECT_DOUBLE_EQ(root.at("shed").at("shard_down").number, 0.0);
  EXPECT_DOUBLE_EQ(root.at("backend").at("shed").at("cancelled").number, 0.0);
  EXPECT_DOUBLE_EQ(root.at("router").at("failovers").number, 0.0);
  EXPECT_TRUE(root.at("accounting_ok").boolean);
  ASSERT_EQ(root.at("breakers").array.size(), 1u);
  EXPECT_EQ(root.at("breakers").array[0].string, "shard0.replica0=closed");
  EXPECT_DOUBLE_EQ(root.at("healthy_replicas").number, 1.0);
  EXPECT_GT(root.at("rows_processed").number, 0.0);
  EXPECT_GT(root.at("latency_us_interactive").at("count").number, 0.0);
  EXPECT_GT(root.at("latency_us_batch").at("count").number, 0.0);
  // v3 additions: the SLO block is always present; the flight block is null
  // until --flight-recorder turns the recorder on.
  EXPECT_DOUBLE_EQ(root.at("params").at("slo_p99_ms").number, 50.0);
  EXPECT_DOUBLE_EQ(root.at("params").at("flight_recorder").number, 0.0);
  const JsonValue& slo = root.at("slo");
  EXPECT_DOUBLE_EQ(slo.at("target_p99_ms").number, 50.0);
  EXPECT_DOUBLE_EQ(slo.at("objective").number, 0.99);
  // The SLO plane tracks the interactive class; this workload has one
  // interactive request among the three.
  EXPECT_DOUBLE_EQ(slo.at("good").number + slo.at("bad").number, 1.0);
  EXPECT_GE(slo.at("burn_rate_long").number, 0.0);
  EXPECT_TRUE(root.at("flight").is_null());
}

TEST_F(CliFixture, ServeMultiShardTopologyRoutesAndStaysAccounted) {
  // Duplicate specs do NOT coalesce (each request draws fresh images), so
  // this checks routing across a 2x2 topology, not coalescing.
  std::string lines;
  for (int i = 0; i < 8; ++i)
    lines += (i % 2 ? "batch 4 200 0.02\n" : "interactive 4 200 0.02\n");
  const std::string reqs = write_requests_file("serve_shards.txt", lines);
  const CliRun r = cli({"serve", "--requests", reqs, "--shards", "2",
                        "--replicas", "2", "--hedge-ms", "50", "--json"});
  EXPECT_EQ(r.exit_code, 0) << r.err;
  const JsonValue root = parse_json(r.out);
  EXPECT_EQ(root.at("schema").string, "sysrle.serve.v5");
  EXPECT_DOUBLE_EQ(root.at("params").at("shards").number, 2.0);
  EXPECT_DOUBLE_EQ(root.at("params").at("replicas").number, 2.0);
  EXPECT_DOUBLE_EQ(root.at("params").at("hedge_ms").number, 50.0);
  EXPECT_DOUBLE_EQ(root.at("offered").number, 8.0);
  EXPECT_DOUBLE_EQ(root.at("completed").number, 8.0);
  EXPECT_TRUE(root.at("accounting_ok").boolean);
  EXPECT_EQ(root.at("breakers").array.size(), 4u);
  EXPECT_DOUBLE_EQ(root.at("healthy_replicas").number, 4.0);
  EXPECT_DOUBLE_EQ(root.at("router").at("hedge_delay_us").number, 50000.0);
}

TEST_F(CliFixture, ServeRejectsBadTopologyFlags) {
  const std::string reqs =
      write_requests_file("serve_topo.txt", "batch 2 100 0.0\n");
  for (const char* flag : {"--shards", "--replicas"}) {
    const CliRun r = cli({"serve", "--requests", reqs, flag, "0"});
    EXPECT_EQ(r.exit_code, 2) << flag;
    EXPECT_NE(r.err.find(flag), std::string::npos) << flag;
  }
  const CliRun r = cli({"serve", "--requests", reqs, "--hedge-ms", "-1"});
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.err.find("--hedge-ms"), std::string::npos);
}

TEST_F(CliFixture, ServeEqualSeedsGiveIdenticalDeterministicFields) {
  const std::string reqs = write_requests_file(
      "serve_seed.txt", "batch 4 200 0.05\ninteractive 4 200 0.05\n");
  auto deterministic_fields = [](const JsonValue& root) {
    return std::vector<double>{
        root.at("offered").number,        root.at("admitted").number,
        root.at("completed").number,      root.at("failed").number,
        root.at("shed").at("total").number, root.at("rows_processed").number};
  };
  const CliRun r1 =
      cli({"serve", "--requests", reqs, "--seed", "7", "--json"});
  const CliRun r2 =
      cli({"serve", "--requests", reqs, "--seed", "7", "--json"});
  ASSERT_EQ(r1.exit_code, 0) << r1.err;
  ASSERT_EQ(r2.exit_code, 0) << r2.err;
  EXPECT_EQ(deterministic_fields(parse_json(r1.out)),
            deterministic_fields(parse_json(r2.out)));
}

TEST_F(CliFixture, ServeRejectsMalformedRequestLineNamingIt) {
  const std::string reqs = write_requests_file(
      "serve_bad.txt", "batch 4 200 0.02\nwhatever 4 200 0.02\n");
  const CliRun r = cli({"serve", "--requests", reqs});
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.err.find("line 2"), std::string::npos);
  const std::string reqs2 =
      write_requests_file("serve_bad2.txt", "batch nonsense\n");
  const CliRun r2 = cli({"serve", "--requests", reqs2});
  EXPECT_EQ(r2.exit_code, 2);
  EXPECT_NE(r2.err.find("line 1"), std::string::npos);
}

TEST_F(CliFixture, ServeRequiresRequestsFlag) {
  const CliRun r = cli({"serve"});
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.err.find("--requests"), std::string::npos);
}

TEST_F(CliFixture, ServeFlightRecorderExportsJsonlAndKillShowsInReport) {
  std::string lines;
  for (int i = 0; i < 6; ++i)
    lines += (i % 2 ? "batch 4 200 0.02\n" : "interactive 4 200 0.02\n");
  const std::string reqs = write_requests_file("serve_flight.txt", lines);
  const std::string jsonl = tmp_path("flight.jsonl");
  const std::string trace = tmp_path("flight_trace.json");
  const CliRun r = cli({"serve", "--requests", reqs, "--shards", "1",
                        "--replicas", "2", "--flight-recorder", "1024",
                        "--flight-out", jsonl, "--flight-trace", trace,
                        "--kill-replica", "0.1@3", "--json"});
  EXPECT_EQ(r.exit_code, 0) << r.err;

  const JsonValue root = parse_json(r.out);
  EXPECT_EQ(root.at("schema").string, "sysrle.serve.v5");
  EXPECT_EQ(root.at("params").at("kill_replica").string, "0.1@3");
  EXPECT_DOUBLE_EQ(root.at("params").at("flight_recorder").number, 1024.0);
  const JsonValue& flight = root.at("flight");
  EXPECT_DOUBLE_EQ(flight.at("capacity").number, 1024.0);
  EXPECT_GT(flight.at("recorded").number, 0.0);
  EXPECT_DOUBLE_EQ(flight.at("dropped").number, 0.0);
  EXPECT_TRUE(root.at("accounting_ok").boolean);

  // The JSONL file: a schema header, then one parseable object per line,
  // with every offered request represented among the events.
  std::ifstream in(jsonl);
  ASSERT_TRUE(in.is_open());
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  const JsonValue header = parse_json(line);
  EXPECT_EQ(header.at("type").string, "header");
  EXPECT_EQ(header.at("schema").string, "sysrle.flight.v1");
  std::set<double> rids;
  while (std::getline(in, line)) {
    const JsonValue v = parse_json(line);
    if (v.at("type").string == "event" && v.at("active").boolean)
      rids.insert(v.at("request_id").number);
  }
  EXPECT_EQ(rids.size(), 6u) << "every offered request has flight events";

  // The Chrome rendering parses and contains flight instants.
  const JsonValue troot = parse_json(slurp(trace));
  EXPECT_GE(troot.at("traceEvents").array.size(), 2u);
}

TEST_F(CliFixture, ServeRejectsBadObservabilityFlags) {
  const std::string reqs =
      write_requests_file("serve_obs.txt", "batch 2 100 0.0\n");
  const CliRun neg = cli({"serve", "--requests", reqs, "--flight-recorder",
                          "-1"});
  EXPECT_EQ(neg.exit_code, 2);
  EXPECT_NE(neg.err.find("--flight-recorder"), std::string::npos);

  // Flight outputs without the recorder are a contradiction, not a no-op.
  const CliRun orphan = cli({"serve", "--requests", reqs, "--flight-out",
                             tmp_path("orphan.jsonl")});
  EXPECT_EQ(orphan.exit_code, 2);
  EXPECT_NE(orphan.err.find("--flight-recorder"), std::string::npos);

  const CliRun slo = cli({"serve", "--requests", reqs, "--slo-p99-ms", "0"});
  EXPECT_EQ(slo.exit_code, 2);
  EXPECT_NE(slo.err.find("--slo-p99-ms"), std::string::npos);

  for (const char* bad : {"banana", "1.2", "0.0", "9.9@1"}) {
    const CliRun r =
        cli({"serve", "--requests", reqs, "--kill-replica", bad});
    EXPECT_EQ(r.exit_code, 2) << bad;
    EXPECT_NE(r.err.find("--kill-replica"), std::string::npos) << bad;
  }

  // Unwritable flight destinations fail before any serving happens.
  const std::string bad_path = tmp_path("no_dir") + "/flight.jsonl";
  const CliRun unwritable =
      cli({"serve", "--requests", reqs, "--flight-recorder", "64",
           "--flight-out", bad_path});
  EXPECT_EQ(unwritable.exit_code, 2);
  EXPECT_NE(unwritable.err.find(bad_path), std::string::npos);
}

TEST_F(CliFixture, ServeRejectsBadStoreFlags) {
  const std::string reqs =
      write_requests_file("serve_store_flags.txt", "batch 2 100 0.0\n");
  // Capacity flags demand a positive integer.
  for (const char* flag : {"--store-cap-mb", "--cache-cap-mb"}) {
    for (const char* bad : {"0", "-3", "banana"}) {
      const CliRun r =
          cli({"serve", "--requests", reqs, "--store", flag, bad});
      EXPECT_EQ(r.exit_code, 2) << flag << " " << bad;
      EXPECT_NE(r.err.find(flag), std::string::npos) << flag << " " << bad;
    }
    // Capacity flags without --store are a contradiction, not a no-op.
    const CliRun orphan = cli({"serve", "--requests", reqs, flag, "8"});
    EXPECT_EQ(orphan.exit_code, 2) << flag;
    EXPECT_NE(orphan.err.find("--store"), std::string::npos) << flag;
  }
  // Store verbs in the request file demand --store.
  const std::string verbs = write_requests_file(
      "serve_store_verbs.txt", "register a 4 200 0.02\n");
  const CliRun r = cli({"serve", "--requests", verbs});
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.err.find("--store"), std::string::npos);
}

TEST_F(CliFixture, ServeStoreSessionServesRepeatDiffFromCache) {
  // Two registered images, the same by-handle diff twice.  The `wait` line
  // fences the first response so the second submit cannot coalesce with it
  // and must be answered by the result cache — bit-identical, without
  // invoking the engine again.
  const std::string reqs = write_requests_file(
      "serve_store.txt",
      "register ref 6 200 0.02\n"
      "register scan 6 200 0.05\n"
      "diff-handles batch ref scan\n"
      "wait\n"
      "diff-handles batch ref scan\n");
  const CliRun r =
      cli({"serve", "--requests", reqs, "--store", "--json"});
  ASSERT_EQ(r.exit_code, 0) << r.err;
  const JsonValue root = parse_json(r.out);
  EXPECT_EQ(root.at("schema").string, "sysrle.serve.v5");
  EXPECT_TRUE(root.at("params").at("store").boolean);
  EXPECT_DOUBLE_EQ(root.at("params").at("registers").number, 2.0);
  EXPECT_DOUBLE_EQ(root.at("offered").number, 2.0);
  EXPECT_DOUBLE_EQ(root.at("completed").number, 2.0);

  const JsonValue& store = root.at("store");
  EXPECT_DOUBLE_EQ(store.at("registered").number, 2.0);
  EXPECT_DOUBLE_EQ(store.at("resident").number, 2.0);
  EXPECT_TRUE(store.at("accounting_ok").boolean);

  const JsonValue& cache = root.at("cache");
  EXPECT_DOUBLE_EQ(cache.at("hits").number, 1.0);
  EXPECT_DOUBLE_EQ(cache.at("misses").number, 1.0);
  EXPECT_TRUE(cache.at("accounting_ok").boolean);

  // The engine ran once; the repeat was served from the cache with the
  // same payload (canonical fingerprints of the delivered diffs match).
  EXPECT_DOUBLE_EQ(root.at("backend").at("engine_invocations").number, 1.0);
  EXPECT_DOUBLE_EQ(root.at("router").at("cache_hits").number, 1.0);
  const JsonValue& diffs = root.at("handle_diffs");
  ASSERT_EQ(diffs.array.size(), 2u);
  EXPECT_EQ(diffs.array[0].at("status").string, "completed");
  EXPECT_EQ(diffs.array[1].at("status").string, "completed");
  EXPECT_FALSE(diffs.array[0].at("from_cache").boolean);
  EXPECT_TRUE(diffs.array[1].at("from_cache").boolean);
  EXPECT_GT(diffs.array[0].at("diff_fingerprint").number, 0.0);
  EXPECT_DOUBLE_EQ(diffs.array[0].at("diff_fingerprint").number,
                   diffs.array[1].at("diff_fingerprint").number);
  EXPECT_TRUE(root.at("accounting_ok").boolean);
}

TEST_F(CliFixture, ServeStoreDiffHandlesNamesUnknownImage) {
  const std::string reqs = write_requests_file(
      "serve_store_unknown.txt",
      "register ref 4 200 0.02\n"
      "diff-handles batch ref ghost\n");
  const CliRun r = cli({"serve", "--requests", reqs, "--store"});
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.err.find("ghost"), std::string::npos);
}

TEST_F(CliFixture, ServeStoreDirPersistsAcrossSessions) {
  // Session 1 registers two images into a durable directory; session 2
  // recovers them from disk — no register lines — and serves a by-handle
  // diff against the recovered labels.
  const std::string dir = tmp_path("durable_dir");
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const std::string reqs1 = write_requests_file(
      "serve_durable1.txt",
      "register ref 6 200 0.02\n"
      "register scan 6 200 0.05\n");
  const CliRun first =
      cli({"serve", "--requests", reqs1, "--store-dir", dir, "--json"});
  ASSERT_EQ(first.exit_code, 0) << first.err;
  const JsonValue root1 = parse_json(first.out);
  EXPECT_EQ(root1.at("schema").string, "sysrle.serve.v5");
  EXPECT_EQ(root1.at("params").at("store_dir").string, dir);
  const JsonValue& dur1 = root1.at("durability");
  EXPECT_DOUBLE_EQ(dur1.at("journal").at("appends").number, 2.0);
  EXPECT_GT(dur1.at("journal").at("fsyncs").number, 0.0);
  EXPECT_TRUE(dur1.at("accounting_ok").boolean);
  EXPECT_DOUBLE_EQ(dur1.at("recovery").at("replayed_registers").number, 0.0);

  const std::string reqs2 = write_requests_file(
      "serve_durable2.txt", "diff-handles batch ref scan\n");
  const CliRun second =
      cli({"serve", "--requests", reqs2, "--store-dir", dir, "--json"});
  ASSERT_EQ(second.exit_code, 0) << second.err;
  const JsonValue root2 = parse_json(second.out);
  const JsonValue& rec = root2.at("durability").at("recovery");
  EXPECT_DOUBLE_EQ(rec.at("replayed_registers").number, 2.0);
  EXPECT_DOUBLE_EQ(rec.at("dropped_malformed").number, 0.0);
  EXPECT_DOUBLE_EQ(rec.at("dropped_fingerprint").number, 0.0);
  EXPECT_DOUBLE_EQ(rec.at("salvaged_bytes").number, 0.0);
  EXPECT_TRUE(root2.at("durability").at("accounting_ok").boolean);
  const JsonValue& diffs = root2.at("handle_diffs");
  ASSERT_EQ(diffs.array.size(), 1u);
  EXPECT_EQ(diffs.array[0].at("status").string, "completed");
  std::filesystem::remove_all(dir);
}

TEST_F(CliFixture, ServeStoreDirPreflightRejectsBadDirectories) {
  const std::string reqs =
      write_requests_file("serve_durable_preflight.txt", "batch 2 100 0.0\n");
  // Nonexistent directory: one-line diagnostic, exit 2, nothing created.
  const CliRun missing = cli({"serve", "--requests", reqs, "--store-dir",
                              tmp_path("no_such_dir")});
  EXPECT_EQ(missing.exit_code, 2);
  EXPECT_NE(missing.err.find("--store-dir"), std::string::npos);
  EXPECT_EQ(std::count(missing.err.begin(), missing.err.end(), '\n'), 1);
  EXPECT_FALSE(std::filesystem::exists(tmp_path("no_such_dir")));

  // A file is not a directory.
  const CliRun file_target =
      cli({"serve", "--requests", reqs, "--store-dir", reqs});
  EXPECT_EQ(file_target.exit_code, 2);
  EXPECT_NE(file_target.err.find("not an existing directory"),
            std::string::npos);

  // --snapshot-every is a durable-store knob: orphaned or negative is usage.
  const std::string dir = tmp_path("durable_flags");
  std::filesystem::create_directories(dir);
  const CliRun orphan =
      cli({"serve", "--requests", reqs, "--snapshot-every", "8"});
  EXPECT_EQ(orphan.exit_code, 2);
  const CliRun negative = cli({"serve", "--requests", reqs, "--store-dir",
                               dir, "--snapshot-every", "-1"});
  EXPECT_EQ(negative.exit_code, 2);
  std::filesystem::remove_all(dir);
}

TEST_F(CliFixture, StoreFsckReportsCleanAndCorruptDirectories) {
  const std::string dir = tmp_path("fsck_dir");
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const std::string reqs = write_requests_file(
      "store_fsck.txt",
      "register ref 6 200 0.02\n"
      "register scan 6 200 0.05\n");
  ASSERT_EQ(cli({"serve", "--requests", reqs, "--store-dir", dir}).exit_code,
            0);
  // A second session recovers and compacts, leaving the canonical layout:
  // both images in the snapshot, the journal truncated to its header.
  const std::string empty_reqs = write_requests_file("store_fsck_empty.txt", "");
  ASSERT_EQ(
      cli({"serve", "--requests", empty_reqs, "--store-dir", dir}).exit_code,
      0);

  const CliRun clean = cli({"store", "fsck", dir, "--json"});
  EXPECT_EQ(clean.exit_code, 0) << clean.err;
  const JsonValue root = parse_json(clean.out);
  EXPECT_EQ(root.at("schema").string, "sysrle.fsck.v1");
  EXPECT_DOUBLE_EQ(root.at("verified_images").number, 2.0);
  EXPECT_DOUBLE_EQ(root.at("fingerprint_mismatches").number, 0.0);
  EXPECT_TRUE(root.at("clean").boolean);

  // Flip one byte mid-snapshot: fsck must flag it (exit 1, clean=false)
  // without modifying the directory.
  const std::string snap = dir + "/store.snapshot";
  std::string data;
  {
    std::ifstream in(snap, std::ios::binary);
    data.assign((std::istreambuf_iterator<char>(in)),
                std::istreambuf_iterator<char>());
  }
  ASSERT_GT(data.size(), 100u);
  data[100] = static_cast<char>(data[100] ^ 0x08);
  {
    std::ofstream out_f(snap, std::ios::binary | std::ios::trunc);
    out_f.write(data.data(), static_cast<std::streamsize>(data.size()));
  }
  const CliRun dirty = cli({"store", "fsck", dir, "--json"});
  EXPECT_EQ(dirty.exit_code, 1);
  const JsonValue droot = parse_json(dirty.out);
  EXPECT_FALSE(droot.at("clean").boolean);
  EXPECT_GT(droot.at("snapshot").at("salvaged_tail_bytes").number +
                droot.at("fingerprint_mismatches").number +
                droot.at("malformed_images").number,
            0.0);

  // Usage errors: missing dir operand, nonexistent directory.
  EXPECT_EQ(cli({"store", "fsck"}).exit_code, 2);
  EXPECT_EQ(cli({"store", "fsck", tmp_path("fsck_nope")}).exit_code, 2);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace sysrle
