// Tests for the in-flight diff coalescer: fingerprinting, waiter
// attachment, collision defense, and ownership reassignment (promotion).

#include "service/coalescer.hpp"

#include <gtest/gtest.h>

#include "rle/ops.hpp"
#include "workload/generator.hpp"
#include "workload/rng.hpp"

namespace sysrle {
namespace {

RleImage make_image(std::uint64_t seed, pos_t rows = 8, pos_t width = 256) {
  Rng rng(seed);
  RowGenParams p;
  p.width = width;
  return generate_image(rng, rows, p);
}

TEST(Coalescer, FingerprintIsStableAndContentSensitive) {
  const RleImage a = make_image(1);
  const RleImage a2 = make_image(1);
  const RleImage b = make_image(2);
  EXPECT_EQ(image_fingerprint(a), image_fingerprint(a2));
  EXPECT_NE(image_fingerprint(a), image_fingerprint(b));

  // Dimensions matter even with zero runs.
  EXPECT_NE(image_fingerprint(RleImage(4, 4)), image_fingerprint(RleImage(4, 5)));
}

TEST(Coalescer, KeyDistinguishesEngineAndCanonicalization) {
  const RleImage a = make_image(3);
  const RleImage b = make_image(4);
  ImageDiffOptions base;
  ImageDiffOptions other_engine = base;
  other_engine.engine = base.engine == DiffEngine::kSystolic
                            ? DiffEngine::kSequentialMerge
                            : DiffEngine::kSystolic;
  ImageDiffOptions no_canon = base;
  no_canon.canonicalize_output = !base.canonicalize_output;

  const CoalesceKey k = coalesce_key(a, b, base);
  EXPECT_EQ(k, coalesce_key(a, b, base));
  EXPECT_FALSE(k == coalesce_key(a, b, other_engine));
  EXPECT_FALSE(k == coalesce_key(a, b, no_canon));
  EXPECT_FALSE(k == coalesce_key(b, a, base));  // order matters
}

TEST(Coalescer, SecondAdmitOfSameWorkAttachesAsWaiter) {
  const RleImage a = make_image(5);
  const RleImage b = make_image(6);
  const CoalesceKey key = coalesce_key(a, b, {});
  Coalescer c;

  const auto first = c.admit(key, a, b, 11);
  EXPECT_TRUE(first.primary);
  EXPECT_FALSE(first.collision);
  EXPECT_EQ(c.inflight(), 1u);

  const auto second = c.admit(key, a, b, 12);
  EXPECT_FALSE(second.primary);
  EXPECT_EQ(second.owner, 11u);
  EXPECT_EQ(c.inflight(), 1u);
}

TEST(Coalescer, FinishMakesTheKeyAdmittableAgain) {
  const RleImage a = make_image(7);
  const RleImage b = make_image(8);
  const CoalesceKey key = coalesce_key(a, b, {});
  Coalescer c;
  ASSERT_TRUE(c.admit(key, a, b, 1).primary);
  c.finish(key);
  EXPECT_EQ(c.inflight(), 0u);
  EXPECT_TRUE(c.admit(key, a, b, 2).primary);
}

TEST(Coalescer, FingerprintCollisionRunsUncoalescedAndUnregistered) {
  const RleImage a = make_image(9);
  const RleImage b = make_image(10);
  const RleImage c_img = make_image(11);
  const RleImage d = make_image(12);
  const CoalesceKey key = coalesce_key(a, b, {});
  Coalescer c;
  ASSERT_TRUE(c.admit(key, a, b, 1).primary);

  // Same key, different images: exactly what a 64-bit fingerprint collision
  // looks like from the coalescer's side.
  const auto collided = c.admit(key, c_img, d, 2);
  EXPECT_TRUE(collided.primary);
  EXPECT_TRUE(collided.collision);
  EXPECT_EQ(c.collisions(), 1u);
  EXPECT_EQ(c.inflight(), 1u);  // the collider was NOT registered

  // The original owner still holds the key.
  const auto dup = c.admit(key, a, b, 3);
  EXPECT_FALSE(dup.primary);
  EXPECT_EQ(dup.owner, 1u);
}

TEST(Coalescer, ReassignHandsOwnershipToThePromotedWaiter) {
  const RleImage a = make_image(13);
  const RleImage b = make_image(14);
  const CoalesceKey key = coalesce_key(a, b, {});
  Coalescer c;
  ASSERT_TRUE(c.admit(key, a, b, 1).primary);
  c.reassign(key, 42);
  const auto dup = c.admit(key, a, b, 3);
  EXPECT_FALSE(dup.primary);
  EXPECT_EQ(dup.owner, 42u);
}

}  // namespace
}  // namespace sysrle
