// Tests for output compaction (section-6 future work) and its cost model.

#include "core/compaction.hpp"

#include <gtest/gtest.h>

#include "core/systolic_diff.hpp"

namespace sysrle {
namespace {

TEST(Compaction, MergesAdjacentOutputRuns) {
  const RleRow raw{{0, 4}, {4, 4}, {10, 2}, {12, 1}};
  const CompactionResult r = compact_row(raw);
  EXPECT_EQ(r.row, (RleRow{{0, 8}, {10, 3}}));
  EXPECT_EQ(r.merges, 2u);
  EXPECT_TRUE(r.row.is_canonical());
}

TEST(Compaction, NoopOnCanonicalRow) {
  const RleRow raw{{0, 4}, {6, 2}};
  const CompactionResult r = compact_row(raw);
  EXPECT_EQ(r.row, raw);
  EXPECT_EQ(r.merges, 0u);
}

TEST(Compaction, EmptyRow) {
  const CompactionResult r = compact_row(RleRow{});
  EXPECT_TRUE(r.row.empty());
  EXPECT_EQ(r.merges, 0u);
}

TEST(Compaction, MachineOutputBecomesFullyCompressed) {
  // A pair whose machine output contains adjacent fragments.
  const RleRow a{{0, 6}};           // [0,5]
  const RleRow b{{3, 6}};           // [3,8] -> XOR = [0,2] u [6,8]
  const SystolicResult sys = systolic_xor(a, b);
  const CompactionResult r = compact_row(sys.output);
  EXPECT_TRUE(r.row.is_canonical());
  EXPECT_EQ(r.row, (RleRow{{0, 3}, {6, 3}}));
}

TEST(CompactionCostModel, SequentialScansWholeArray) {
  const CompactionCost c = compaction_cost(64, 10);
  EXPECT_EQ(c.sequential_cycles, 64u);
  EXPECT_EQ(c.bus_cycles, 10u);
}

TEST(CompactionCostModel, BusWinsWhenOutputIsSparse) {
  // The interesting regime: few output runs scattered over a long array.
  const CompactionCost c = compaction_cost(1000, 12);
  EXPECT_LT(c.bus_cycles, c.sequential_cycles);
}

}  // namespace
}  // namespace sysrle
