// Tests for RLE <-> bitmap conversion, especially the word-scanning encoder.

#include "bitmap/convert.hpp"

#include <gtest/gtest.h>

#include "rle/encode.hpp"
#include "test_util.hpp"
#include "workload/rng.hpp"

namespace sysrle {
namespace {

TEST(Convert, BitrowToRleSimple) {
  const BitRow row = BitRow::from_string("0011100110");
  EXPECT_EQ(bitrow_to_rle(row), (RleRow{{2, 3}, {7, 2}}));
}

TEST(Convert, BitrowToRleEmptyAndFull) {
  EXPECT_TRUE(bitrow_to_rle(BitRow(100)).empty());
  BitRow full(100);
  full.fill(0, 100, true);
  EXPECT_EQ(bitrow_to_rle(full), (RleRow{{0, 100}}));
}

TEST(Convert, RunsSpanningWordBoundaries) {
  BitRow row(200);
  row.fill(60, 10, true);    // crosses word 0->1
  row.fill(120, 20, true);   // crosses word 1->2
  row.fill(190, 10, true);   // ends exactly at width
  EXPECT_EQ(bitrow_to_rle(row), (RleRow{{60, 10}, {120, 20}, {190, 10}}));
}

TEST(Convert, RunCoveringExactlyOneWord) {
  BitRow row(192);
  row.fill(64, 64, true);  // word 1 entirely set
  EXPECT_EQ(bitrow_to_rle(row), (RleRow{{64, 64}}));
}

TEST(Convert, RunAtVeryEndOfLastPartialWord) {
  BitRow row(70);
  row.fill(69, 1, true);
  EXPECT_EQ(bitrow_to_rle(row), (RleRow{{69, 1}}));
}

TEST(Convert, RunEndingExactlyAtWordBoundary) {
  // Regression: a run whose last 1 is bit 63 of a word leaves the block
  // "open" into the next word, where countr_one finds zero further ones.
  // A comment in the old encoder claimed that case could not happen.
  BitRow row(200);
  row.fill(30, 34, true);  // ends at bit 63 exactly
  EXPECT_EQ(bitrow_to_rle(row), (RleRow{{30, 34}}));

  BitRow two(300);
  two.fill(0, 64, true);    // ends at boundary 63/64
  two.fill(100, 92, true);  // ends at boundary 191/192
  EXPECT_EQ(bitrow_to_rle(two), (RleRow{{0, 64}, {100, 92}}));
}

TEST(Convert, RunStartingExactlyAtWordBoundary) {
  BitRow row(300);
  row.fill(64, 5, true);
  row.fill(128, 64, true);  // starts AND ends on boundaries
  EXPECT_EQ(bitrow_to_rle(row), (RleRow{{64, 5}, {128, 64}}));
}

TEST(Convert, AllOnesMultiWordRows) {
  for (const pos_t width : {64, 65, 127, 128, 192, 200, 1024}) {
    BitRow row(width);
    row.fill(0, width, true);
    EXPECT_EQ(bitrow_to_rle(row), (RleRow{{0, width}})) << "width " << width;
  }
}

TEST(Convert, AppendWordRunsWithBaseOffset) {
  // The extractor shared with the word-parallel diff engine: positions are
  // rebased, output appends after existing runs.
  const std::uint64_t words[2] = {(std::uint64_t{1} << 63),  // bit 63
                                  0x7};                      // bits 64..66
  RleRow out{{0, 2}};
  append_word_runs(words, 2, 128, out);
  EXPECT_EQ(out, (RleRow{{0, 2}, {128 + 63, 4}}));
}

TEST(Convert, MatchesNaiveEncoderOnRandomInput) {
  Rng rng(23);
  for (int trial = 0; trial < 80; ++trial) {
    const pos_t width = rng.uniform(1, 400);
    // Mix densities to exercise long runs and isolated bits.
    const double density = trial % 2 ? 0.9 : 0.2;
    BitRow row(width);
    for (pos_t i = 0; i < width; ++i)
      if (rng.bernoulli(density)) row.set(i, true);
    EXPECT_EQ(bitrow_to_rle(row), encode_bitstring(row.to_string()))
        << "trial " << trial << " width " << width;
  }
}

TEST(Convert, RleToBitrowRoundTrip) {
  Rng rng(29);
  for (int trial = 0; trial < 40; ++trial) {
    const pos_t width = rng.uniform(1, 300);
    const RleRow row = sysrle::testing::random_row(rng, width, 0.4);
    const BitRow bits = rle_to_bitrow(row, width);
    EXPECT_EQ(bitrow_to_rle(bits), row);
    EXPECT_EQ(bits.popcount(), row.foreground_pixels());
  }
}

TEST(Convert, ImageRoundTrip) {
  BitmapImage img(130, 5);
  img.fill_rect(10, 1, 50, 3, true);
  img.fill_rect(100, 0, 20, 5, true);
  const RleImage rle = bitmap_to_rle(img);
  EXPECT_EQ(rle.width(), 130);
  EXPECT_EQ(rle.height(), 5);
  EXPECT_EQ(rle_to_bitmap(rle), img);
  EXPECT_EQ(rle.stats().foreground_pixels, img.popcount());
}

}  // namespace
}  // namespace sysrle
