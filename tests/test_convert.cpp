// Tests for RLE <-> bitmap conversion, especially the word-scanning encoder.

#include "bitmap/convert.hpp"

#include <gtest/gtest.h>

#include "rle/encode.hpp"
#include "test_util.hpp"
#include "workload/rng.hpp"

namespace sysrle {
namespace {

TEST(Convert, BitrowToRleSimple) {
  const BitRow row = BitRow::from_string("0011100110");
  EXPECT_EQ(bitrow_to_rle(row), (RleRow{{2, 3}, {7, 2}}));
}

TEST(Convert, BitrowToRleEmptyAndFull) {
  EXPECT_TRUE(bitrow_to_rle(BitRow(100)).empty());
  BitRow full(100);
  full.fill(0, 100, true);
  EXPECT_EQ(bitrow_to_rle(full), (RleRow{{0, 100}}));
}

TEST(Convert, RunsSpanningWordBoundaries) {
  BitRow row(200);
  row.fill(60, 10, true);    // crosses word 0->1
  row.fill(120, 20, true);   // crosses word 1->2
  row.fill(190, 10, true);   // ends exactly at width
  EXPECT_EQ(bitrow_to_rle(row), (RleRow{{60, 10}, {120, 20}, {190, 10}}));
}

TEST(Convert, RunCoveringExactlyOneWord) {
  BitRow row(192);
  row.fill(64, 64, true);  // word 1 entirely set
  EXPECT_EQ(bitrow_to_rle(row), (RleRow{{64, 64}}));
}

TEST(Convert, RunAtVeryEndOfLastPartialWord) {
  BitRow row(70);
  row.fill(69, 1, true);
  EXPECT_EQ(bitrow_to_rle(row), (RleRow{{69, 1}}));
}

TEST(Convert, MatchesNaiveEncoderOnRandomInput) {
  Rng rng(23);
  for (int trial = 0; trial < 80; ++trial) {
    const pos_t width = rng.uniform(1, 400);
    // Mix densities to exercise long runs and isolated bits.
    const double density = trial % 2 ? 0.9 : 0.2;
    BitRow row(width);
    for (pos_t i = 0; i < width; ++i)
      if (rng.bernoulli(density)) row.set(i, true);
    EXPECT_EQ(bitrow_to_rle(row), encode_bitstring(row.to_string()))
        << "trial " << trial << " width " << width;
  }
}

TEST(Convert, RleToBitrowRoundTrip) {
  Rng rng(29);
  for (int trial = 0; trial < 40; ++trial) {
    const pos_t width = rng.uniform(1, 300);
    const RleRow row = sysrle::testing::random_row(rng, width, 0.4);
    const BitRow bits = rle_to_bitrow(row, width);
    EXPECT_EQ(bitrow_to_rle(bits), row);
    EXPECT_EQ(bits.popcount(), row.foreground_pixels());
  }
}

TEST(Convert, ImageRoundTrip) {
  BitmapImage img(130, 5);
  img.fill_rect(10, 1, 50, 3, true);
  img.fill_rect(100, 0, 20, 5, true);
  const RleImage rle = bitmap_to_rle(img);
  EXPECT_EQ(rle.width(), 130);
  EXPECT_EQ(rle.height(), 5);
  EXPECT_EQ(rle_to_bitmap(rle), img);
  EXPECT_EQ(rle.stats().foreground_pixels, img.popcount());
}

}  // namespace
}  // namespace sysrle
