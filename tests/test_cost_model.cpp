// Tests for the section-5 analytic cost model: the predictions must bound
// the measured machine behaviour.

#include "core/cost_model.hpp"

#include <gtest/gtest.h>

#include "baseline/sequential_diff.hpp"
#include "core/systolic_diff.hpp"
#include "test_util.hpp"
#include "workload/generator.hpp"
#include "workload/rng.hpp"

namespace sysrle {
namespace {

using sysrle::testing::random_row;

TEST(CostModel, CountsRunsAndXorRuns) {
  const RleRow a{{10, 3}, {16, 2}, {23, 2}, {27, 3}};
  const RleRow b{{3, 4}, {8, 5}, {15, 5}, {23, 2}, {27, 4}};
  const DiffCostMeasurement p = measure_costs(a, b);
  EXPECT_EQ(p.k1, 4u);
  EXPECT_EQ(p.k2, 5u);
  EXPECT_EQ(p.k3_canonical, 5u);
  EXPECT_EQ(p.sequential_cost(), 9u);
  EXPECT_EQ(p.theorem1_bound(), 9u);
  EXPECT_EQ(p.run_count_difference(), 1u);
  EXPECT_GE(p.k3_raw, p.k3_canonical);
}

TEST(CostModel, EmptyInputs) {
  const DiffCostMeasurement p = measure_costs(RleRow{}, RleRow{});
  EXPECT_EQ(p.sequential_cost(), 0u);
  EXPECT_EQ(p.observation_bound(), 1u);  // k3 = 0
}

TEST(CostModel, EstimateAgreesWithMeasurementOnTheCheapHalf) {
  // estimate_costs is the O(1) tier: same k1/k2-derived numbers as the
  // measurement, without ever computing the XOR.
  Rng rng(504);
  for (int trial = 0; trial < 20; ++trial) {
    const pos_t width = rng.uniform(1, 300);
    const RleRow a = random_row(rng, width, rng.uniform01());
    const RleRow b = random_row(rng, width, rng.uniform01());
    const DiffCostEstimate e = estimate_costs(a, b);
    const DiffCostMeasurement m = measure_costs(a, b);
    EXPECT_EQ(e.k1, m.k1);
    EXPECT_EQ(e.k2, m.k2);
    EXPECT_EQ(e.sequential_cost(), m.sequential_cost());
    EXPECT_EQ(e.theorem1_bound(), m.theorem1_bound());
    EXPECT_EQ(e.run_count_difference(), m.run_count_difference());
  }
}

TEST(CostModel, Theorem1BoundsMeasuredIterations) {
  Rng rng(501);
  for (int trial = 0; trial < 40; ++trial) {
    const pos_t width = rng.uniform(1, 300);
    const RleRow a = random_row(rng, width, rng.uniform01());
    const RleRow b = random_row(rng, width, rng.uniform01());
    const DiffCostMeasurement p = measure_costs(a, b);
    const SystolicResult r = systolic_xor(a, b);
    EXPECT_LE(r.counters.iterations, p.theorem1_bound()) << "trial " << trial;
  }
}

TEST(CostModel, ObservationBoundsCanonicalInputs) {
  // The paper's Observation: for maximally compressed inputs the machine
  // stops within k3 + 1 iterations (k3 = runs in the machine's own output).
  // The workload generator produces canonical rows by construction.
  Rng rng(502);
  RowGenParams row_params;
  row_params.width = 2000;
  ErrorGenParams err;
  for (int trial = 0; trial < 30; ++trial) {
    err.error_fraction = rng.uniform01() * 0.5;
    const RowPairSample s = generate_pair(rng, row_params, err);
    const SystolicResult r = systolic_xor(s.first, s.second);
    const std::uint64_t k3_raw = r.output.run_count();
    EXPECT_LE(r.counters.iterations, k3_raw + 1) << "trial " << trial;
  }
}

TEST(CostModel, AdaptiveRouteSimilarShapesToSystolic) {
  // Figure-5 regime: similar run counts mean few iterations on the machine.
  EXPECT_EQ(choose_adaptive_route(10, 10), AdaptiveRoute::kSystolic);
  EXPECT_EQ(choose_adaptive_route(10, 12), AdaptiveRoute::kSystolic);
  EXPECT_EQ(choose_adaptive_route(0, 0), AdaptiveRoute::kSystolic);
  EXPECT_EQ(choose_adaptive_route(1, 1), AdaptiveRoute::kSystolic);
}

TEST(CostModel, AdaptiveRouteDissimilarShapesToSequential) {
  // One side empty (or nearly) makes |k1 - k2| approach k1 + k2: the merge
  // wins because the machine would grind through max(k1, k2) iterations.
  EXPECT_EQ(choose_adaptive_route(0, 10), AdaptiveRoute::kSequential);
  EXPECT_EQ(choose_adaptive_route(10, 0), AdaptiveRoute::kSequential);
  EXPECT_EQ(choose_adaptive_route(1, 100), AdaptiveRoute::kSequential);
}

TEST(CostModel, AdaptiveRouteBoundaryIsInclusive) {
  // |k1 - k2| == threshold * (k1 + k2) exactly: systolic (the machine is
  // the paper's default; ties go to it).
  EXPECT_EQ(choose_adaptive_route(3, 9, 0.5), AdaptiveRoute::kSystolic);  // 6 == 6
  EXPECT_EQ(choose_adaptive_route(3, 10, 0.5), AdaptiveRoute::kSequential);
  EXPECT_EQ(choose_adaptive_route(3, 5, 0.25), AdaptiveRoute::kSystolic);  // 2 == 2
  EXPECT_EQ(choose_adaptive_route(3, 6, 0.25), AdaptiveRoute::kSequential);
  // Custom thresholds move the boundary.
  EXPECT_EQ(choose_adaptive_route(5, 10, 1.0), AdaptiveRoute::kSystolic);
  EXPECT_EQ(choose_adaptive_route(0, 10, 1.0), AdaptiveRoute::kSystolic);
  EXPECT_EQ(choose_adaptive_route(10, 11, 0.0), AdaptiveRoute::kSequential);
  EXPECT_EQ(choose_adaptive_route(10, 10, 0.0), AdaptiveRoute::kSystolic);
}

TEST(CostModel, DefaultThresholdIsTheRecalibratedConstant) {
  // The no-argument overload must track kDefaultSimilarityThreshold, the θ
  // re-calibrated against the word-parallel sequential engine (method in
  // docs/PERFORMANCE.md, evidence in BENCH_pr10.json).
  for (const std::uint64_t k1 : {0u, 1u, 3u, 7u, 10u, 40u})
    for (const std::uint64_t k2 : {0u, 2u, 5u, 9u, 11u, 100u})
      EXPECT_EQ(choose_adaptive_route(k1, k2),
                choose_adaptive_route(k1, k2, kDefaultSimilarityThreshold))
          << "k1=" << k1 << " k2=" << k2;
}

TEST(CostModel, SequentialCostPredictsMergeIterations) {
  Rng rng(503);
  for (int trial = 0; trial < 30; ++trial) {
    const pos_t width = rng.uniform(10, 400);
    const RleRow a = random_row(rng, width, 0.4);
    const RleRow b = random_row(rng, width, 0.4);
    const DiffCostMeasurement p = measure_costs(a, b);
    const SequentialDiffResult r = sequential_xor(a, b);
    // The merge does Theta(k1 + k2) iterations; each iteration either emits
    // one piece or cancels a shared prefix, so it is at least max(k1,k2)
    // and at most k1 + k2 + k3.
    EXPECT_GE(r.iterations, std::max(p.k1, p.k2));
    EXPECT_LE(r.iterations, p.sequential_cost() + p.k3_raw);
  }
}

}  // namespace
}  // namespace sysrle
