// Tests for the activity counters.

#include "systolic/counters.hpp"

#include <gtest/gtest.h>

namespace sysrle {
namespace {

TEST(Counters, DefaultIsZero) {
  const SystolicCounters c;
  EXPECT_EQ(c.iterations, 0u);
  EXPECT_EQ(c.swaps, 0u);
  EXPECT_EQ(c.cells_used, 0u);
}

TEST(Counters, AccumulationAddsAndMaxes) {
  SystolicCounters a;
  a.iterations = 3;
  a.swaps = 2;
  a.shifts = 10;
  a.cells_used = 7;
  SystolicCounters b;
  b.iterations = 5;
  b.promotions = 1;
  b.cells_used = 4;
  a += b;
  EXPECT_EQ(a.iterations, 8u);
  EXPECT_EQ(a.swaps, 2u);
  EXPECT_EQ(a.promotions, 1u);
  EXPECT_EQ(a.shifts, 10u);
  EXPECT_EQ(a.cells_used, 7u);  // max, not sum
}

TEST(Counters, AccumulationCoversEveryField) {
  // Distinct primes per field so a swapped or dropped field in operator+=
  // cannot cancel out.
  SystolicCounters a;
  a.iterations = 2;
  a.swaps = 3;
  a.promotions = 5;
  a.xors = 7;
  a.shifts = 11;
  a.bus_moves = 13;
  a.bus_cycles = 17;
  a.cells_used = 19;
  SystolicCounters b;
  b.iterations = 23;
  b.swaps = 29;
  b.promotions = 31;
  b.xors = 37;
  b.shifts = 41;
  b.bus_moves = 43;
  b.bus_cycles = 47;
  b.cells_used = 53;
  a += b;
  EXPECT_EQ(a.iterations, 25u);
  EXPECT_EQ(a.swaps, 32u);
  EXPECT_EQ(a.promotions, 36u);
  EXPECT_EQ(a.xors, 44u);
  EXPECT_EQ(a.shifts, 52u);
  EXPECT_EQ(a.bus_moves, 56u);
  EXPECT_EQ(a.bus_cycles, 64u);
  EXPECT_EQ(a.cells_used, 53u);  // max, not sum
}

TEST(Counters, CellsUsedKeepsLargerLeftOperand) {
  SystolicCounters a;
  a.cells_used = 9;
  SystolicCounters b;
  b.cells_used = 4;
  a += b;
  EXPECT_EQ(a.cells_used, 9u);
}

TEST(Counters, AccumulatingZeroIsIdentity) {
  SystolicCounters a;
  a.iterations = 6;
  a.swaps = 4;
  a.cells_used = 3;
  const SystolicCounters before = a;
  a += SystolicCounters{};
  EXPECT_EQ(a.iterations, before.iterations);
  EXPECT_EQ(a.swaps, before.swaps);
  EXPECT_EQ(a.cells_used, before.cells_used);
}

TEST(Counters, SelfAccumulationDoublesAddsKeepsMax) {
  SystolicCounters a;
  a.iterations = 5;
  a.xors = 8;
  a.cells_used = 6;
  a += a;
  EXPECT_EQ(a.iterations, 10u);
  EXPECT_EQ(a.xors, 16u);
  EXPECT_EQ(a.cells_used, 6u);
}

TEST(Counters, ToStringMentionsEveryField) {
  SystolicCounters c;
  c.iterations = 1;
  c.swaps = 2;
  c.promotions = 3;
  c.xors = 4;
  c.shifts = 5;
  c.bus_moves = 6;
  c.bus_cycles = 7;
  c.cells_used = 8;
  const std::string s = c.to_string();
  EXPECT_NE(s.find("iterations=1"), std::string::npos);
  EXPECT_NE(s.find("swaps=2"), std::string::npos);
  EXPECT_NE(s.find("promotions=3"), std::string::npos);
  EXPECT_NE(s.find("xors=4"), std::string::npos);
  EXPECT_NE(s.find("shifts=5"), std::string::npos);
  EXPECT_NE(s.find("bus_moves=6"), std::string::npos);
  EXPECT_NE(s.find("bus_cycles=7"), std::string::npos);
  EXPECT_NE(s.find("cells_used=8"), std::string::npos);
}

}  // namespace
}  // namespace sysrle
