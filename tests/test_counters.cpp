// Tests for the activity counters.

#include "systolic/counters.hpp"

#include <gtest/gtest.h>

namespace sysrle {
namespace {

TEST(Counters, DefaultIsZero) {
  const SystolicCounters c;
  EXPECT_EQ(c.iterations, 0u);
  EXPECT_EQ(c.swaps, 0u);
  EXPECT_EQ(c.cells_used, 0u);
}

TEST(Counters, AccumulationAddsAndMaxes) {
  SystolicCounters a;
  a.iterations = 3;
  a.swaps = 2;
  a.shifts = 10;
  a.cells_used = 7;
  SystolicCounters b;
  b.iterations = 5;
  b.promotions = 1;
  b.cells_used = 4;
  a += b;
  EXPECT_EQ(a.iterations, 8u);
  EXPECT_EQ(a.swaps, 2u);
  EXPECT_EQ(a.promotions, 1u);
  EXPECT_EQ(a.shifts, 10u);
  EXPECT_EQ(a.cells_used, 7u);  // max, not sum
}

TEST(Counters, ToStringMentionsEveryField) {
  SystolicCounters c;
  c.iterations = 1;
  c.bus_moves = 2;
  const std::string s = c.to_string();
  EXPECT_NE(s.find("iterations=1"), std::string::npos);
  EXPECT_NE(s.find("bus_moves=2"), std::string::npos);
  EXPECT_NE(s.find("cells_used="), std::string::npos);
}

}  // namespace
}  // namespace sysrle
