// Tests for the gate-level cost model.

#include "systolic/datapath.hpp"

#include <gtest/gtest.h>

#include "common/assert.hpp"

namespace sysrle {
namespace {

TEST(Datapath, GateCountsAccumulate) {
  GateCounts a{10, 5};
  GateCounts b{3, 7};
  const GateCounts c = a + b;
  EXPECT_EQ(c.combinational, 13u);
  EXPECT_EQ(c.sequential, 12u);
  EXPECT_EQ(c.total(), 25u);
}

TEST(Datapath, PerBitUnitsScaleLinearly) {
  const CellCostModel m16(16);
  const CellCostModel m32(32);
  EXPECT_EQ(m32.comparator().combinational, 2 * m16.comparator().combinational);
  EXPECT_EQ(m32.incrementer().combinational,
            2 * m16.incrementer().combinational);
  EXPECT_GT(m32.registers().sequential, m16.registers().sequential);
}

TEST(Datapath, MinMaxCostsMoreThanComparator) {
  const CellCostModel m(20);
  EXPECT_GT(m.minmax_unit().combinational, m.comparator().combinational);
}

TEST(Datapath, CellTotalDominatesItsParts) {
  const CellCostModel m(20);
  const GateCounts cell = m.cell_total();
  EXPECT_GT(cell.combinational,
            4 * m.minmax_unit().combinational);  // plus step-1 and control
  EXPECT_EQ(cell.sequential, m.registers().sequential);
  EXPECT_GT(cell.total(), 0u);
}

TEST(Datapath, LookaheadTradesAreaForDelay) {
  const CellCostModel ripple(32, AdderStyle::kRipple);
  const CellCostModel fast(32, AdderStyle::kLookahead);
  EXPECT_GT(fast.comparator().combinational, ripple.comparator().combinational);
  EXPECT_LT(fast.critical_path_gates(), ripple.critical_path_gates());
}

TEST(Datapath, CriticalPathGrowsWithWordWidth) {
  const CellCostModel narrow(8);
  const CellCostModel wide(32);
  EXPECT_LT(narrow.critical_path_gates(), wide.critical_path_gates());
}

TEST(Datapath, ArrayScalesWithCells) {
  ArrayCostModel one{CellCostModel(20), 1};
  ArrayCostModel many{CellCostModel(20), 500};
  EXPECT_EQ(many.total().total(), 500 * one.total().total());
  EXPECT_DOUBLE_EQ(one.max_clock_mhz(0.5), many.max_clock_mhz(0.5));
}

TEST(Datapath, MaxClockFromGateDelay) {
  ArrayCostModel m{CellCostModel(20, AdderStyle::kLookahead), 100};
  const double slow = m.max_clock_mhz(1.0);
  const double fast = m.max_clock_mhz(0.5);
  EXPECT_NEAR(fast, 2 * slow, 1e-9);
  EXPECT_THROW(m.max_clock_mhz(0.0), contract_error);
}

TEST(Datapath, RejectsBadWordWidth) {
  EXPECT_THROW(CellCostModel(0), contract_error);
  EXPECT_THROW(CellCostModel(65), contract_error);
  EXPECT_NO_THROW(CellCostModel(64));
}

TEST(Datapath, ToStringMentionsKeyNumbers) {
  ArrayCostModel m{CellCostModel(20), 500};
  const std::string s = m.to_string();
  EXPECT_NE(s.find("500 cells"), std::string::npos);
  EXPECT_NE(s.find("20-bit"), std::string::npos);
  EXPECT_NE(s.find("GE"), std::string::npos);
}

}  // namespace
}  // namespace sysrle
