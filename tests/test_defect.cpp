// Tests for defect extraction and classification.

#include "inspect/defect.hpp"

#include <gtest/gtest.h>

#include "rle/encode.hpp"
#include "rle/ops.hpp"

namespace sysrle {
namespace {

RleImage image_from(std::initializer_list<const char*> rows) {
  std::vector<RleRow> encoded;
  pos_t width = 0;
  for (const char* r : rows) {
    encoded.push_back(encode_bitstring(r));
    width = static_cast<pos_t>(std::string(r).size());
  }
  return RleImage(width, std::move(encoded));
}

RleImage diff_of(const RleImage& a, const RleImage& b) {
  RleImage out(a.width(), a.height());
  for (pos_t y = 0; y < a.height(); ++y)
    out.set_row(y, xor_rows(a.row(y), b.row(y)));
  return out;
}

TEST(Defect, MissingMaterialClassified) {
  const RleImage ref = image_from({"111111", "111111"});
  const RleImage scan = image_from({"110011", "110011"});  // void in middle
  const auto defects = extract_defects(ref, diff_of(ref, scan));
  ASSERT_EQ(defects.size(), 1u);
  EXPECT_EQ(defects[0].cls, DefectClass::kMissingMaterial);
  EXPECT_EQ(defects[0].region.pixel_count, 4);
  EXPECT_EQ(defects[0].on_reference, 4);
  EXPECT_EQ(defects[0].off_reference, 0);
}

TEST(Defect, ExtraMaterialClassified) {
  const RleImage ref = image_from({"100001", "100001"});
  const RleImage scan = image_from({"101101", "100001"});  // stray copper
  const auto defects = extract_defects(ref, diff_of(ref, scan));
  ASSERT_EQ(defects.size(), 1u);
  EXPECT_EQ(defects[0].cls, DefectClass::kExtraMaterial);
  EXPECT_EQ(defects[0].on_reference, 0);
  EXPECT_EQ(defects[0].off_reference, 2);
}

TEST(Defect, MixedDefectWhenEdgeMoves) {
  // The scan's run is shifted: the diff covers both polarities.
  const RleImage ref = image_from({"111000"});
  const RleImage scan = image_from({"000111"});
  const auto defects = extract_defects(ref, diff_of(ref, scan));
  ASSERT_EQ(defects.size(), 1u);  // one 8-connected blob across [0,5]
  EXPECT_EQ(defects[0].cls, DefectClass::kMixed);
  EXPECT_EQ(defects[0].on_reference, 3);
  EXPECT_EQ(defects[0].off_reference, 3);
}

TEST(Defect, MinAreaGateFiltersNoise) {
  const RleImage ref = image_from({"000000"});
  const RleImage scan = image_from({"010011"});  // 1-px speck + 2-px defect
  DefectExtractionOptions opts;
  opts.min_area = 2;
  const auto defects = extract_defects(ref, diff_of(ref, scan), opts);
  ASSERT_EQ(defects.size(), 1u);
  EXPECT_EQ(defects[0].region.pixel_count, 2);
}

TEST(Defect, CleanDiffGivesNoDefects) {
  const RleImage ref = image_from({"1100", "0011"});
  EXPECT_TRUE(extract_defects(ref, diff_of(ref, ref)).empty());
}

TEST(Defect, ToStringMentionsClassAndArea) {
  const RleImage ref = image_from({"111111"});
  const RleImage scan = image_from({"110111"});
  const auto defects = extract_defects(ref, diff_of(ref, scan));
  ASSERT_EQ(defects.size(), 1u);
  const std::string s = defects[0].to_string();
  EXPECT_NE(s.find("missing-material"), std::string::npos);
  EXPECT_NE(s.find("area=1"), std::string::npos);
}

TEST(Defect, ClassNamesAreDistinct) {
  EXPECT_STRNE(to_string(DefectClass::kMissingMaterial),
               to_string(DefectClass::kExtraMaterial));
  EXPECT_STRNE(to_string(DefectClass::kExtraMaterial),
               to_string(DefectClass::kMixed));
}

}  // namespace
}  // namespace sysrle
