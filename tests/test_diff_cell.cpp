// Tests for one systolic cell: step 1 (order) and step 2 (XOR), covering
// every qualitatively different cell state of the paper's Figure 4 in both
// the "a" (already ordered) and "b" (swapped) variants.

#include "core/diff_cell.hpp"

#include <gtest/gtest.h>

#include "rle/encode.hpp"
#include "rle/ops.hpp"

namespace sysrle {
namespace {

using RunT = ::sysrle::Run;  // avoid collision with testing::Test::Run

DiffCell cell_with(std::optional<RunT> small, std::optional<RunT> big) {
  DiffCell c;
  c.load_small(small);
  c.load_big(big);
  return c;
}

/// Runs steps 1+2 and checks the registers against the true XOR of the two
/// runs, including the required placement (RegSmall holds the earlier piece).
void expect_xor(std::optional<RunT> small, std::optional<RunT> big) {
  DiffCell c = cell_with(small, big);
  std::vector<RunT> inputs;
  if (small) inputs.push_back(*small);
  if (big) inputs.push_back(*big);
  const RleRow expected = xor_run_multiset(inputs);

  c.order();
  c.xor_step();

  std::vector<RunT> outputs;
  if (c.reg_small()) outputs.push_back(*c.reg_small());
  if (c.reg_big()) outputs.push_back(*c.reg_big());
  EXPECT_EQ(xor_run_multiset(outputs), expected);
  // Placement: if both registers hold runs they must be ordered.
  if (c.reg_small() && c.reg_big()) {
    EXPECT_LT(c.reg_small()->end(), c.reg_big()->start);
  }
  // If only one run results it must be in RegSmall or RegBig but never
  // duplicated; covered by the multiset check above.
}

// --- step 1 (order) ------------------------------------------------------

TEST(DiffCellOrder, KeepsOrderedRegisters) {
  DiffCell c = cell_with(RunT{3, 4}, RunT{10, 3});
  EXPECT_EQ(c.order(), OrderAction::kNone);
  EXPECT_EQ(*c.reg_small(), (RunT{3, 4}));
  EXPECT_EQ(*c.reg_big(), (RunT{10, 3}));
}

TEST(DiffCellOrder, SwapsWhenSmallStartsLater) {
  DiffCell c = cell_with(RunT{10, 3}, RunT{3, 4});
  EXPECT_EQ(c.order(), OrderAction::kSwapped);
  EXPECT_EQ(*c.reg_small(), (RunT{3, 4}));
  EXPECT_EQ(*c.reg_big(), (RunT{10, 3}));
}

TEST(DiffCellOrder, SwapsOnEqualStartByEnd) {
  DiffCell c = cell_with(RunT{5, 10}, RunT{5, 3});
  EXPECT_EQ(c.order(), OrderAction::kSwapped);
  EXPECT_EQ(*c.reg_small(), (RunT{5, 3}));
}

TEST(DiffCellOrder, EqualRunsNotSwapped) {
  DiffCell c = cell_with(RunT{5, 3}, RunT{5, 3});
  EXPECT_EQ(c.order(), OrderAction::kNone);
}

TEST(DiffCellOrder, PromotesLoneBigRun) {
  DiffCell c = cell_with(std::nullopt, RunT{7, 2});
  EXPECT_EQ(c.order(), OrderAction::kPromoted);
  EXPECT_EQ(*c.reg_small(), (RunT{7, 2}));
  EXPECT_FALSE(c.reg_big().has_value());
  EXPECT_TRUE(c.complete());
}

TEST(DiffCellOrder, EmptyAndLoneSmallUntouched) {
  DiffCell empty;
  EXPECT_EQ(empty.order(), OrderAction::kNone);
  EXPECT_TRUE(empty.empty());
  DiffCell lone = cell_with(RunT{2, 2}, std::nullopt);
  EXPECT_EQ(lone.order(), OrderAction::kNone);
  EXPECT_EQ(*lone.reg_small(), (RunT{2, 2}));
}

// --- step 2 (XOR): the nine Figure-4 state families ----------------------

TEST(DiffCellStates, State1DisjointWithGap) {
  expect_xor(RunT{3, 4}, RunT{10, 3});   // 1a
  expect_xor(RunT{10, 3}, RunT{3, 4});   // 1b (swapped load)
}

TEST(DiffCellStates, State2Adjacent) {
  expect_xor(RunT{3, 4}, RunT{7, 3});    // [3,6] touching [7,9]
  expect_xor(RunT{7, 3}, RunT{3, 4});
}

TEST(DiffCellStates, State3PartialOverlap) {
  expect_xor(RunT{3, 8}, RunT{5, 12});   // [3,10] x [5,16]
  expect_xor(RunT{5, 12}, RunT{3, 8});
}

TEST(DiffCellStates, State4SharedEnd) {
  expect_xor(RunT{3, 8}, RunT{5, 6});    // [3,10] x [5,10]
  expect_xor(RunT{5, 6}, RunT{3, 8});
}

TEST(DiffCellStates, State5Containment) {
  expect_xor(RunT{3, 10}, RunT{5, 3});   // [3,12] contains [5,7]
  expect_xor(RunT{5, 3}, RunT{3, 10});
}

TEST(DiffCellStates, State6SharedStart) {
  expect_xor(RunT{5, 3}, RunT{5, 8});    // [5,7] x [5,12]
  expect_xor(RunT{5, 8}, RunT{5, 3});
}

TEST(DiffCellStates, State7IdenticalRunsCancel) {
  DiffCell c = cell_with(RunT{5, 3}, RunT{5, 3});
  c.order();
  EXPECT_TRUE(c.xor_step());
  EXPECT_TRUE(c.empty());
  EXPECT_TRUE(c.complete());
}

TEST(DiffCellStates, State8SinglePixelCases) {
  expect_xor(RunT{5, 1}, RunT{5, 1});
  expect_xor(RunT{5, 1}, RunT{6, 1});
  expect_xor(RunT{5, 1}, RunT{5, 4});
}

TEST(DiffCellStates, State9LoneRunIsIdentity) {
  DiffCell c = cell_with(RunT{4, 4}, std::nullopt);
  c.order();
  EXPECT_FALSE(c.xor_step());  // nothing to XOR
  EXPECT_EQ(*c.reg_small(), (RunT{4, 4}));
}

TEST(DiffCellStates, ExhaustiveSmallUniverse) {
  // Every pair of runs within a 10-pixel universe, loaded both ways.
  for (pos_t s1 = 0; s1 < 10; ++s1)
    for (pos_t e1 = s1; e1 < 10; ++e1)
      for (pos_t s2 = 0; s2 < 10; ++s2)
        for (pos_t e2 = s2; e2 < 10; ++e2)
          expect_xor(RunT::from_bounds(s1, e1), RunT::from_bounds(s2, e2));
}

TEST(DiffCell, XorStepNoopWhenRegisterEmpty) {
  DiffCell c = cell_with(std::nullopt, std::nullopt);
  EXPECT_FALSE(c.xor_step());
}

TEST(DiffCell, TakeBigEmptiesRegister) {
  DiffCell c = cell_with(RunT{1, 1}, RunT{5, 2});
  const std::optional<RunT> taken = c.take_big();
  ASSERT_TRUE(taken.has_value());
  EXPECT_EQ(*taken, (RunT{5, 2}));
  EXPECT_TRUE(c.complete());
  EXPECT_FALSE(c.take_big().has_value());
}

TEST(DiffCell, SnapshotReflectsRegisters) {
  DiffCell c = cell_with(RunT{1, 2}, RunT{5, 1});
  const CellSnapshot s = c.snapshot();
  EXPECT_EQ(s.reg_small, (RunT{1, 2}));
  EXPECT_EQ(s.reg_big, (RunT{5, 1}));
}

}  // namespace
}  // namespace sysrle
