// Tests for the durability layer: journal framing and torn-tail salvage,
// snapshot round-trips and per-entry CRC salvage, recovery through the
// hardened reader with canonical-fingerprint re-verification, a unit-size
// crash-point sweep (the full sweep lives in bench_durability), the
// single-byte-flip fuzz over both at-rest files, and concurrency hammers
// for TSan (CI runs this binary under ThreadSanitizer).

#include "store/durable_store.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "common/assert.hpp"
#include "rle/serialize.hpp"
#include "store/store_journal.hpp"
#include "store/store_snapshot.hpp"
#include "workload/generator.hpp"
#include "workload/rng.hpp"

namespace sysrle {
namespace {

namespace fs = std::filesystem;

RleImage make_image(std::uint64_t seed, pos_t rows = 6, pos_t width = 128) {
  Rng rng(seed);
  RowGenParams p;
  p.width = width;
  p.density = 0.3;
  return generate_image(rng, rows, p);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, const std::string& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
}

/// A fresh scratch directory per test, removed on destruction.
struct ScratchDir {
  std::string path;
  explicit ScratchDir(const std::string& tag) {
    path = (fs::temp_directory_path() /
            ("sysrle_durable_test_" + tag + "_" +
             std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
             "_" + std::to_string(reinterpret_cast<std::uintptr_t>(this))))
               .string();
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~ScratchDir() { fs::remove_all(path); }
};

DurableStoreConfig plain_config(const std::string& dir) {
  DurableStoreConfig cfg;
  cfg.dir = dir;
  cfg.snapshot_on_recovery = false;
  return cfg;
}

TEST(StoreJournal, RoundTripRegisterAndEvict) {
  ScratchDir dir("journal_roundtrip");
  const std::string path = store_journal_path(dir.path);
  const RleImage img = make_image(1);
  const std::string bytes = canonical_rle_bytes(img);
  const ImageHandle h = canonical_fingerprint(img);
  {
    StoreJournal journal(path);
    journal.append_register(h, "one", bytes);
    journal.append_evict(h);
    const JournalStats s = journal.stats();
    EXPECT_EQ(s.appends, 2u);
    EXPECT_EQ(s.fsyncs, 2u);  // fsync_every defaults to 1
  }
  const JournalLoadResult load = load_journal(path);
  EXPECT_TRUE(load.file_present);
  EXPECT_TRUE(load.header_ok);
  EXPECT_EQ(load.salvaged_tail_bytes, 0u);
  EXPECT_TRUE(load.tail_reason.empty());
  ASSERT_EQ(load.records.size(), 2u);
  EXPECT_EQ(load.records[0].kind, JournalRecordKind::kRegister);
  EXPECT_EQ(load.records[0].handle, h);
  EXPECT_EQ(load.records[0].label, "one");
  EXPECT_EQ(load.records[0].bytes, bytes);
  EXPECT_EQ(load.records[1].kind, JournalRecordKind::kEvict);
  EXPECT_EQ(load.records[1].handle, h);
}

TEST(StoreJournal, MissingFileIsEmptyJournal) {
  ScratchDir dir("journal_missing");
  const JournalLoadResult load =
      load_journal(store_journal_path(dir.path));
  EXPECT_FALSE(load.file_present);
  EXPECT_TRUE(load.records.empty());
  EXPECT_EQ(load.salvaged_tail_bytes, 0u);
}

TEST(StoreJournal, ReopenAppendsAfterExistingRecords) {
  ScratchDir dir("journal_reopen");
  const std::string path = store_journal_path(dir.path);
  const RleImage a = make_image(1);
  const RleImage b = make_image(2);
  {
    StoreJournal journal(path);
    journal.append_register(canonical_fingerprint(a), "a",
                            canonical_rle_bytes(a));
  }
  {
    StoreJournal journal(path);
    journal.append_register(canonical_fingerprint(b), "b",
                            canonical_rle_bytes(b));
  }
  const JournalLoadResult load = load_journal(path);
  ASSERT_EQ(load.records.size(), 2u);
  EXPECT_EQ(load.records[0].label, "a");
  EXPECT_EQ(load.records[1].label, "b");
}

TEST(StoreJournal, TornTailIsSalvagedToCleanPrefix) {
  ScratchDir dir("journal_torn");
  const std::string path = store_journal_path(dir.path);
  const RleImage img = make_image(3);
  {
    StoreJournal journal(path);
    journal.append_register(canonical_fingerprint(img), "whole",
                            canonical_rle_bytes(img));
    journal.append_evict(canonical_fingerprint(img));
  }
  const std::string full = read_file(path);
  const JournalLoadResult clean = load_journal(path);
  ASSERT_EQ(clean.records.size(), 2u);

  // Cut inside the second record: the first must survive, the torn tail is
  // reported, and the clean_bytes boundary is exactly the first record end.
  const std::uint64_t cut =
      clean.records[1].offset + clean.records[1].length / 2;
  write_file(path, full.substr(0, cut));
  const JournalLoadResult torn = load_journal(path);
  ASSERT_EQ(torn.records.size(), 1u);
  EXPECT_EQ(torn.records[0].label, "whole");
  EXPECT_EQ(torn.clean_bytes, clean.records[1].offset);
  EXPECT_EQ(torn.salvaged_tail_bytes, cut - clean.records[1].offset);
  EXPECT_FALSE(torn.tail_reason.empty());
}

TEST(StoreJournal, CrcMismatchStopsReplayTyped) {
  ScratchDir dir("journal_crc");
  const std::string path = store_journal_path(dir.path);
  const RleImage img = make_image(4);
  {
    StoreJournal journal(path);
    journal.append_register(canonical_fingerprint(img), "x",
                            canonical_rle_bytes(img));
  }
  std::string data = read_file(path);
  data[data.size() / 2] = static_cast<char>(data[data.size() / 2] ^ 0xff);
  write_file(path, data);
  const JournalLoadResult load = load_journal(path);
  EXPECT_TRUE(load.header_ok);
  EXPECT_TRUE(load.records.empty());
  EXPECT_GT(load.salvaged_tail_bytes, 0u);
  EXPECT_EQ(load.tail_reason, "crc_mismatch");
}

TEST(StoreJournal, BadHeaderQuarantinesWholeFile) {
  ScratchDir dir("journal_header");
  const std::string path = store_journal_path(dir.path);
  write_file(path, "this is not a journal at all");
  const JournalLoadResult load = load_journal(path);
  EXPECT_TRUE(load.file_present);
  EXPECT_FALSE(load.header_ok);
  EXPECT_TRUE(load.records.empty());
  EXPECT_EQ(load.tail_reason, "bad_header");

  // The append side refuses to extend a non-journal file.
  EXPECT_THROW(StoreJournal journal(path), contract_error);
}

TEST(StoreJournal, TruncateToHeaderEmptiesTheLog) {
  ScratchDir dir("journal_truncate");
  const std::string path = store_journal_path(dir.path);
  const RleImage img = make_image(5);
  StoreJournal journal(path);
  journal.append_register(canonical_fingerprint(img), "gone",
                          canonical_rle_bytes(img));
  journal.truncate_to_header();
  journal.append_evict(canonical_fingerprint(img));
  EXPECT_EQ(journal.stats().truncations, 1u);
  const JournalLoadResult load = load_journal(path);
  ASSERT_EQ(load.records.size(), 1u);
  EXPECT_EQ(load.records[0].kind, JournalRecordKind::kEvict);
}

TEST(StoreSnapshot, RoundTrip) {
  ScratchDir dir("snapshot_roundtrip");
  const std::string path = store_snapshot_path(dir.path);
  std::vector<SnapshotEntry> entries;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const RleImage img = make_image(seed);
    entries.push_back({canonical_fingerprint(img),
                       "img" + std::to_string(seed),
                       canonical_rle_bytes(img)});
  }
  write_snapshot(path, entries);
  EXPECT_FALSE(fs::exists(path + ".tmp"));  // temp renamed away

  const SnapshotLoadResult load = load_snapshot(path);
  EXPECT_TRUE(load.file_present);
  EXPECT_TRUE(load.header_ok);
  EXPECT_EQ(load.declared_entries, 3u);
  EXPECT_EQ(load.salvaged_tail_bytes, 0u);
  ASSERT_EQ(load.entries.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(load.entries[i].handle, entries[i].handle);
    EXPECT_EQ(load.entries[i].label, entries[i].label);
    EXPECT_EQ(load.entries[i].bytes, entries[i].bytes);
  }
}

TEST(StoreSnapshot, RewriteReplacesAtomically) {
  ScratchDir dir("snapshot_rewrite");
  const std::string path = store_snapshot_path(dir.path);
  const RleImage a = make_image(1);
  const RleImage b = make_image(2);
  write_snapshot(path, {{canonical_fingerprint(a), "a",
                         canonical_rle_bytes(a)}});
  write_snapshot(path, {{canonical_fingerprint(b), "b",
                         canonical_rle_bytes(b)}});
  const SnapshotLoadResult load = load_snapshot(path);
  ASSERT_EQ(load.entries.size(), 1u);
  EXPECT_EQ(load.entries[0].label, "b");
}

TEST(StoreSnapshot, CorruptEntrySalvagesPrefix) {
  ScratchDir dir("snapshot_corrupt");
  const std::string path = store_snapshot_path(dir.path);
  std::vector<SnapshotEntry> entries;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const RleImage img = make_image(seed);
    entries.push_back({canonical_fingerprint(img), "", canonical_rle_bytes(img)});
  }
  write_snapshot(path, entries);
  std::string data = read_file(path);
  // Flip a byte near the end: the last entry's CRC breaks, the first two
  // load clean.
  data[data.size() - 4] = static_cast<char>(data[data.size() - 4] ^ 0x01);
  write_file(path, data);
  const SnapshotLoadResult load = load_snapshot(path);
  EXPECT_TRUE(load.header_ok);
  EXPECT_EQ(load.entries.size(), 2u);
  EXPECT_GT(load.salvaged_tail_bytes, 0u);
  EXPECT_EQ(load.tail_reason, "crc_mismatch");
}

TEST(StoreSnapshot, MissingFileIsEmptySnapshot) {
  ScratchDir dir("snapshot_missing");
  const SnapshotLoadResult load =
      load_snapshot(store_snapshot_path(dir.path));
  EXPECT_FALSE(load.file_present);
  EXPECT_TRUE(load.entries.empty());
}

TEST(DurableStore, RecoversRegistersLabelsAndEvicts) {
  ScratchDir dir("recover_basic");
  const RleImage kept = make_image(1);
  const RleImage gone = make_image(2);
  {
    DurableStore ds(plain_config(dir.path));
    ASSERT_TRUE(ds.register_image(kept, "kept").ok);
    const auto rg = ds.register_image(gone, "gone");
    ASSERT_TRUE(rg.ok);
    ASSERT_TRUE(ds.evict(rg.handle));
  }
  DurableStore ds(plain_config(dir.path));
  const RecoveryReport& rec = ds.recovery();
  EXPECT_EQ(rec.replayed_registers, 2u);
  EXPECT_EQ(rec.replayed_evicts, 1u);
  EXPECT_EQ(rec.dropped(), 0u);
  EXPECT_EQ(ds.store().stats().resident, 1u);
  EXPECT_TRUE(ds.store().stats().accounted());

  const auto labels = ds.labels();
  ASSERT_TRUE(labels.count("kept"));
  const PinnedImage pin = ds.store().acquire(labels.at("kept"));
  ASSERT_TRUE(pin);
  EXPECT_EQ(pin.image(), kept);
  EXPECT_EQ(canonical_fingerprint(pin.image()), labels.at("kept"));
}

TEST(DurableStore, BudgetEvictionsAreJournaledAndRecovered) {
  ScratchDir dir("recover_budget_evict");
  DurableStoreConfig cfg = plain_config(dir.path);
  // Capacity for roughly two of these images: the third register evicts the
  // LRU head, and that eviction must be journaled through on_evict.
  const std::size_t one = canonical_rle_bytes(make_image(1)).size();
  cfg.store.capacity_bytes = one * 2 + one / 2;
  std::vector<ImageHandle> handles;
  {
    DurableStore ds(cfg);
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      const auto r =
          ds.register_image(make_image(seed), "s" + std::to_string(seed));
      ASSERT_TRUE(r.ok);
      handles.push_back(r.handle);
    }
    EXPECT_GT(ds.store().stats().evicted, 0u);
  }
  DurableStore ds(cfg);
  EXPECT_FALSE(ds.store().contains(handles[0]));  // evicted, stayed evicted
  EXPECT_TRUE(ds.store().contains(handles[2]));
  EXPECT_TRUE(ds.store().stats().accounted());
}

TEST(DurableStore, SnapshotCompactsJournal) {
  ScratchDir dir("snapshot_compacts");
  DurableStoreConfig cfg = plain_config(dir.path);
  cfg.snapshot_every = 2;
  {
    DurableStore ds(cfg);
    ASSERT_TRUE(ds.register_image(make_image(1), "a").ok);
    ASSERT_TRUE(ds.register_image(make_image(2), "b").ok);  // triggers snapshot
    const DurabilityStats stats = ds.durability_stats();
    EXPECT_EQ(stats.snapshots, 1u);
    EXPECT_EQ(stats.last_snapshot_entries, 2u);
    EXPECT_EQ(stats.journal.truncations, 1u);
  }
  // Post-compaction layout: everything in the snapshot, journal bare.
  EXPECT_EQ(load_journal(store_journal_path(dir.path)).records.size(), 0u);
  EXPECT_EQ(load_snapshot(store_snapshot_path(dir.path)).entries.size(), 2u);

  DurableStore ds(cfg);
  EXPECT_EQ(ds.recovery().snapshot_entries, 2u);
  EXPECT_EQ(ds.store().stats().resident, 2u);
  EXPECT_EQ(ds.labels().size(), 2u);
}

TEST(DurableStore, RecoveryCompactionLeavesCanonicalDir) {
  ScratchDir dir("recovery_compacts");
  {
    DurableStore ds(plain_config(dir.path));
    ASSERT_TRUE(ds.register_image(make_image(1), "a").ok);
  }
  DurableStoreConfig cfg;
  cfg.dir = dir.path;  // snapshot_on_recovery defaults to true
  DurableStore ds(cfg);
  EXPECT_EQ(ds.durability_stats().snapshots, 1u);
  EXPECT_EQ(load_journal(store_journal_path(dir.path)).records.size(), 0u);
  EXPECT_EQ(load_snapshot(store_snapshot_path(dir.path)).entries.size(), 1u);
}

TEST(DurableStore, FlippedBitBecomesTypedDropNeverServed) {
  ScratchDir dir("flip_typed_drop");
  const RleImage img = make_image(7);
  const ImageHandle h = canonical_fingerprint(img);
  { DurableStore ds(plain_config(dir.path));
    ASSERT_TRUE(ds.register_image(img, "poisoned").ok); }

  // Forge a journal whose record CRC is valid but whose image bytes no
  // longer fingerprint to the recorded handle — the CRC layer cannot catch
  // this; the end-to-end fingerprint check must.
  std::string bytes = canonical_rle_bytes(img);
  ASSERT_GT(bytes.size(), 20u);
  bytes[bytes.size() - 1] = static_cast<char>(bytes[bytes.size() - 1] ^ 0x04);
  const std::string path = store_journal_path(dir.path);
  ASSERT_EQ(std::remove(path.c_str()), 0);
  { StoreJournal journal(path);
    journal.append_register(h, "poisoned", bytes); }

  DurableStore ds(plain_config(dir.path));
  const RecoveryReport& rec = ds.recovery();
  EXPECT_EQ(rec.journal_records, 1u);
  EXPECT_EQ(rec.replayed_registers, 0u);
  EXPECT_EQ(rec.dropped_malformed + rec.dropped_fingerprint, 1u);
  EXPECT_FALSE(ds.store().contains(h));  // never resident, never servable
  EXPECT_EQ(ds.labels().count("poisoned"), 0u);
}

TEST(DurableStore, CrashPointSweepPreservesPrefixProperty) {
  ScratchDir dir("crash_sweep");
  // Acknowledged op log: three registers, one explicit evict.
  std::vector<std::pair<bool, ImageHandle>> ops;
  {
    DurableStore ds(plain_config(dir.path));
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      const auto r =
          ds.register_image(make_image(seed), "s" + std::to_string(seed));
      ASSERT_TRUE(r.ok);
      ops.emplace_back(true, r.handle);
    }
    ASSERT_TRUE(ds.evict(ops[0].second));
    ops.emplace_back(false, ops[0].second);
  }
  const std::string path = store_journal_path(dir.path);
  const std::string full = read_file(path);
  const JournalLoadResult clean = load_journal(path);
  ASSERT_EQ(clean.records.size(), ops.size());

  // Every boundary and every mid-record cut: recovery equals the state
  // after the longest complete prefix.
  std::vector<std::pair<std::uint64_t, std::size_t>> cuts;  // offset -> k
  cuts.emplace_back(clean.records.front().offset, 0);
  for (std::size_t i = 0; i < clean.records.size(); ++i) {
    const JournalRecord& r = clean.records[i];
    cuts.emplace_back(r.offset + 1, i);
    cuts.emplace_back(r.offset + r.length / 2, i);
    cuts.emplace_back(r.offset + r.length, i + 1);
  }
  for (const auto& [cut, k] : cuts) {
    ScratchDir scratch("crash_sweep_point");
    write_file(store_journal_path(scratch.path), full.substr(0, cut));
    DurableStore ds(plain_config(scratch.path));
    std::set<ImageHandle> expect;
    for (std::size_t i = 0; i < k; ++i) {
      if (ops[i].first)
        expect.insert(ops[i].second);
      else
        expect.erase(ops[i].second);
    }
    EXPECT_TRUE(ds.store().stats().accounted());
    EXPECT_EQ(ds.store().stats().resident, expect.size()) << "cut=" << cut;
    for (const ImageHandle h : expect) {
      const PinnedImage pin = ds.store().acquire(h);
      ASSERT_TRUE(pin) << "cut=" << cut;
      EXPECT_EQ(canonical_fingerprint(pin.image()), h);
    }
  }
}

TEST(DurableStore, SingleByteFlipFuzzJournalAndSnapshot) {
  ScratchDir dir("flip_fuzz");
  {
    DurableStoreConfig cfg = plain_config(dir.path);
    DurableStore ds(cfg);
    ASSERT_TRUE(ds.register_image(make_image(1), "a").ok);
    ds.snapshot_now();
    ASSERT_TRUE(ds.register_image(make_image(2), "b").ok);
  }
  const std::string journal = read_file(store_journal_path(dir.path));
  const std::string snapshot = read_file(store_snapshot_path(dir.path));
  ASSERT_FALSE(journal.empty());
  ASSERT_FALSE(snapshot.empty());

  // Every single-byte flip in either file: recovery never crashes, stays
  // accounted, resident is a subset of {a, b}, and any loss is typed —
  // salvaged tail bytes, a typed drop, or a quarantined header.
  const std::set<ImageHandle> truth = {
      canonical_fingerprint(make_image(1)), canonical_fingerprint(make_image(2))};
  for (int which = 0; which < 2; ++which) {
    const std::string& original = which == 0 ? journal : snapshot;
    for (std::size_t off = 0; off < original.size(); ++off) {
      ScratchDir scratch("flip_fuzz_point");
      std::string flipped = original;
      flipped[off] = static_cast<char>(flipped[off] ^ 0x10);
      write_file(store_journal_path(scratch.path),
                 which == 0 ? flipped : journal);
      write_file(store_snapshot_path(scratch.path),
                 which == 0 ? snapshot : flipped);
      DurableStore ds(plain_config(scratch.path));
      EXPECT_TRUE(ds.store().stats().accounted());
      std::size_t resident_seen = 0;
      for (const ImageHandle h : truth) {
        const PinnedImage pin = ds.store().acquire(h);
        if (!pin) continue;
        ++resident_seen;
        EXPECT_EQ(canonical_fingerprint(pin.image()), h)
            << "file=" << which << " off=" << off;
      }
      EXPECT_EQ(ds.store().stats().resident, resident_seen)
          << "file=" << which << " off=" << off;
      const RecoveryReport& rec = ds.recovery();
      if (resident_seen != truth.size()) {
        EXPECT_TRUE(rec.salvaged_bytes() > 0 || rec.dropped() > 0 ||
                    !rec.snapshot_header_ok || !rec.journal_header_ok)
            << "untyped loss at file=" << which << " off=" << off;
      }
    }
  }
}

TEST(DurableStore, FsckCleanAndCorrupt) {
  ScratchDir dir("fsck");
  {
    DurableStore ds(plain_config(dir.path));
    ASSERT_TRUE(ds.register_image(make_image(1), "a").ok);
    ds.snapshot_now();
    ASSERT_TRUE(ds.register_image(make_image(2), "b").ok);
  }
  FsckReport clean = fsck_store_dir(dir.path);
  EXPECT_TRUE(clean.clean());
  EXPECT_EQ(clean.verified_images, 2u);
  EXPECT_EQ(clean.snapshot_entries, 1u);
  EXPECT_EQ(clean.journal_registers, 1u);

  std::string snap = read_file(store_snapshot_path(dir.path));
  snap[snap.size() / 2] = static_cast<char>(snap[snap.size() / 2] ^ 0x40);
  write_file(store_snapshot_path(dir.path), snap);
  FsckReport dirty = fsck_store_dir(dir.path);
  EXPECT_FALSE(dirty.clean());
  EXPECT_GT(dirty.snapshot_salvaged_bytes, 0u);
}

TEST(StoreJournal, ConcurrentAppendHammer) {
  ScratchDir dir("journal_hammer");
  StoreJournal journal(store_journal_path(dir.path), /*fsync_every=*/8);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 16;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&journal, t] {
      const RleImage img = make_image(100 + static_cast<std::uint64_t>(t));
      const std::string bytes = canonical_rle_bytes(img);
      const ImageHandle h = canonical_fingerprint(img);
      for (int i = 0; i < kPerThread; ++i) {
        if (i % 4 == 3)
          journal.append_evict(h);
        else
          journal.append_register(h, "t" + std::to_string(t), bytes);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  journal.sync();
  EXPECT_EQ(journal.stats().appends,
            static_cast<std::uint64_t>(kThreads * kPerThread));
  const JournalLoadResult load = load_journal(store_journal_path(dir.path));
  EXPECT_EQ(load.records.size(),
            static_cast<std::size_t>(kThreads * kPerThread));
  EXPECT_EQ(load.salvaged_tail_bytes, 0u);
}

TEST(DurableStore, ConcurrentRegisterEvictSnapshotHammer) {
  ScratchDir dir("durable_hammer");
  DurableStoreConfig cfg = plain_config(dir.path);
  DurableStore ds(cfg);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 8;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&ds, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const std::uint64_t seed =
            1000 + static_cast<std::uint64_t>(t) * kPerThread +
            static_cast<std::uint64_t>(i);
        const auto r = ds.register_image(make_image(seed), "");
        ASSERT_TRUE(r.ok);
        if (i % 3 == 2) ds.evict(r.handle);
        if (i % 5 == 4) ds.snapshot_now();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  ds.snapshot_now();
  EXPECT_TRUE(ds.store().stats().accounted());
  const std::uint64_t resident = ds.store().stats().resident;

  // The compacted directory recovers to exactly the live resident set.
  DurableStore recovered(plain_config(dir.path));
  EXPECT_EQ(recovered.store().stats().resident, resident);
  EXPECT_TRUE(recovered.store().stats().accounted());
}

}  // namespace
}  // namespace sysrle
