// Tests for bitstring <-> RLE conversion.

#include "rle/encode.hpp"

#include <gtest/gtest.h>

#include "common/assert.hpp"
#include "workload/rng.hpp"

namespace sysrle {
namespace {

TEST(Encode, EmptyString) {
  EXPECT_TRUE(encode_bitstring("").empty());
  EXPECT_TRUE(encode_bitstring("0000").empty());
}

TEST(Encode, SingleRun) {
  EXPECT_EQ(encode_bitstring("00111"), (RleRow{{2, 3}}));
  EXPECT_EQ(encode_bitstring("111"), (RleRow{{0, 3}}));
  EXPECT_EQ(encode_bitstring("1"), (RleRow{{0, 1}}));
}

TEST(Encode, MultipleRuns) {
  EXPECT_EQ(encode_bitstring("1011001110"),
            (RleRow{{0, 1}, {2, 2}, {6, 3}}));
}

TEST(Encode, RejectsBadCharacters) {
  EXPECT_THROW(encode_bitstring("01x"), contract_error);
}

TEST(Decode, ReproducesBitstring) {
  const RleRow row{{2, 3}, {7, 1}};
  EXPECT_EQ(decode_bitstring(row, 10), "0011100100");
}

TEST(Decode, EmptyRow) {
  EXPECT_EQ(decode_bitstring(RleRow{}, 4), "0000");
  EXPECT_EQ(decode_bitstring(RleRow{}, 0), "");
}

TEST(Decode, RejectsRowExceedingWidth) {
  const RleRow row{{8, 4}};
  EXPECT_THROW(decode_bits(row, 10), contract_error);
}

TEST(Encode, RoundTripRandom) {
  Rng rng(42);
  for (int trial = 0; trial < 50; ++trial) {
    std::string bits(static_cast<std::size_t>(rng.uniform(0, 300)), '0');
    for (auto& c : bits)
      if (rng.bernoulli(0.4)) c = '1';
    const RleRow row = encode_bitstring(bits);
    EXPECT_EQ(decode_bitstring(row, static_cast<pos_t>(bits.size())), bits);
    EXPECT_TRUE(row.is_canonical());
  }
}

TEST(Encode, BytesAndStringAgree) {
  const std::vector<std::uint8_t> bytes{0, 1, 1, 0, 7, 0};  // nonzero = fg
  EXPECT_EQ(encode_bits(bytes), encode_bitstring("011010"));
}

}  // namespace
}  // namespace sysrle
