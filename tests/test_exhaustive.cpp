// Exhaustive small-universe verification: EVERY pair of binary rows of width
// 7 (128 x 128 = 16384 pairs) is pushed through the systolic machine, the
// bus variant and the sequential merge, and compared against string-level
// XOR.  With the per-cell state space fully enumerated in test_diff_cell,
// this closes the gap between "random testing" and "checked everywhere" for
// small instances.

#include <gtest/gtest.h>

#include <string>

#include "baseline/sequential_diff.hpp"
#include "core/bus_variant.hpp"
#include "core/systolic_diff.hpp"
#include "rle/encode.hpp"

namespace sysrle {
namespace {

constexpr int kWidth = 7;

std::string bits_of(unsigned value) {
  std::string s(kWidth, '0');
  for (int i = 0; i < kWidth; ++i)
    if (value & (1u << i)) s[static_cast<std::size_t>(i)] = '1';
  return s;
}

TEST(Exhaustive, AllWidth7PairsAllEngines) {
  for (unsigned va = 0; va < (1u << kWidth); ++va) {
    const std::string sa = bits_of(va);
    const RleRow a = encode_bitstring(sa);
    for (unsigned vb = 0; vb < (1u << kWidth); ++vb) {
      const std::string sb = bits_of(vb);
      const RleRow b = encode_bitstring(sb);
      const RleRow expected = encode_bitstring(bits_of(va ^ vb));

      const SystolicResult sys = systolic_xor(a, b);
      ASSERT_EQ(sys.output.canonical(), expected)
          << "systolic: " << sa << " ^ " << sb;
      ASSERT_LE(sys.counters.iterations, a.run_count() + b.run_count())
          << "Theorem 1: " << sa << " ^ " << sb;
      // Canonical inputs (encode_bitstring output is canonical): the
      // Observation bound applies.
      ASSERT_LE(sys.counters.iterations, sys.output.run_count() + 1)
          << "Observation: " << sa << " ^ " << sb;

      const BusResult bus = bus_systolic_xor(a, b);
      ASSERT_EQ(bus.output.canonical(), expected)
          << "bus: " << sa << " ^ " << sb;

      const SequentialDiffResult seq = sequential_xor(a, b);
      ASSERT_EQ(seq.output.canonical(), expected)
          << "sequential: " << sa << " ^ " << sb;
    }
  }
}

TEST(Exhaustive, Theorem1BoundIsTight) {
  // The k1+k2 bound is not just safe but reachable: the exhaustive sweep
  // must contain at least one input pair that needs exactly k1+k2
  // iterations (with both inputs non-empty).  Record one witness.
  bool found = false;
  std::string witness;
  for (unsigned va = 0; va < (1u << kWidth) && !found; ++va) {
    const RleRow a = encode_bitstring(bits_of(va));
    if (a.empty()) continue;
    for (unsigned vb = 0; vb < (1u << kWidth); ++vb) {
      const RleRow b = encode_bitstring(bits_of(vb));
      if (b.empty()) continue;
      const SystolicResult r = systolic_xor(a, b);
      if (r.counters.iterations == a.run_count() + b.run_count()) {
        found = true;
        witness = bits_of(va) + " ^ " + bits_of(vb);
        break;
      }
    }
  }
  EXPECT_TRUE(found) << "no tight witness in the width-7 universe";
  SCOPED_TRACE("tight witness: " + witness);
}

TEST(Exhaustive, AllWidth7PairsInvariantChecked) {
  // A sparser sub-lattice with the full section-4 invariant checkers armed
  // (every 7th left operand to keep the runtime in check).
  SystolicConfig cfg;
  cfg.check_invariants = true;
  for (unsigned va = 0; va < (1u << kWidth); va += 7) {
    const RleRow a = encode_bitstring(bits_of(va));
    for (unsigned vb = 0; vb < (1u << kWidth); ++vb) {
      const RleRow b = encode_bitstring(bits_of(vb));
      const SystolicResult sys = systolic_xor(a, b, cfg);
      ASSERT_EQ(sys.output.canonical(), encode_bitstring(bits_of(va ^ vb)));
    }
  }
}

}  // namespace
}  // namespace sysrle
