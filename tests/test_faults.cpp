// Fault-injection tests: every modelled single-cell hardware fault must be
// caught by the section-4 invariant checkers (the "online self-test") or at
// minimum produce no silent corruption.  This doubles as mutation testing of
// the checkers: if a checker were weakened, these tests would start seeing
// silent corruption.

#include "core/faults.hpp"

#include <gtest/gtest.h>

#include "common/assert.hpp"
#include "test_util.hpp"
#include "workload/generator.hpp"
#include "workload/rng.hpp"

namespace sysrle {
namespace {

using sysrle::testing::random_row;

// The paper's Figure 1 pair: cell 0 swaps in iteration 1, every early cell
// XORs, shifts happen — all fault sites are exercised.
const RleRow kImg1{{10, 3}, {16, 2}, {23, 2}, {27, 3}};
const RleRow kImg2{{3, 4}, {8, 5}, {15, 5}, {23, 2}, {27, 4}};

TEST(Faults, HealthyBaselineRunsCleanly) {
  // Sanity: the fault harness with a fault placed in a never-active cell
  // behaves like the healthy machine.
  FaultSpec spec;
  spec.kind = FaultKind::kNoSwap;
  spec.cell = 9;  // beyond every run for this input (capacity k1+k2+1 = 10)
  const FaultOutcome o = run_with_fault(kImg1, kImg2, spec);
  EXPECT_FALSE(o.any_effect());
  EXPECT_EQ(o.iterations, 3u);
}

TEST(Faults, NoSwapComparatorIsDetected) {
  FaultSpec spec;
  spec.kind = FaultKind::kNoSwap;
  spec.cell = 0;  // cell 0 must swap in iteration 1 on the Figure-1 input
  const FaultOutcome o = run_with_fault(kImg1, kImg2, spec);
  EXPECT_TRUE(o.any_effect());
  EXPECT_FALSE(o.silent_corruption());
  EXPECT_TRUE(o.detected_by_invariants);
}

TEST(Faults, CorruptXorEndIsDetected) {
  FaultSpec spec;
  spec.kind = FaultKind::kCorruptXorEnd;
  spec.cell = 1;
  const FaultOutcome o = run_with_fault(kImg1, kImg2, spec);
  EXPECT_TRUE(o.detected_by_invariants);  // Theorem 3 conservation breaks
  EXPECT_FALSE(o.silent_corruption());
}

TEST(Faults, DropShiftIsDetected) {
  FaultSpec spec;
  spec.kind = FaultKind::kDropShift;
  spec.cell = 3;  // cell 3's RegBig travels on the Figure-1 input
  const FaultOutcome o = run_with_fault(kImg1, kImg2, spec);
  EXPECT_TRUE(o.detected_by_invariants);  // coverage vanishes -> Theorem 3
  EXPECT_FALSE(o.silent_corruption());
}

TEST(Faults, StuckCompleteHighIsDetected) {
  // The stuck line only changes behaviour when its cell is the sole busy
  // cell at a termination check.  Arrange exactly that: one travelling run
  // that reaches cell 1 while everything else is already complete.
  const RleRow a{{0, 2}};
  const RleRow b{{10, 2}};
  FaultSpec spec;
  spec.kind = FaultKind::kStuckCompleteHigh;
  spec.cell = 1;
  const FaultOutcome o = run_with_fault(a, b, spec);
  EXPECT_TRUE(o.any_effect());
  EXPECT_TRUE(o.wrong_output);  // the (10,2) run is never promoted
  EXPECT_TRUE(o.detected_by_invariants);  // final state has a live RegBig
  EXPECT_FALSE(o.silent_corruption());
}

TEST(Faults, StuckCompleteHighHarmlessWhenNotTheBottleneck) {
  // On the Figure-1 input several cells are busy at every termination
  // check, so one stuck line never decides termination: no effect — the
  // wired-AND gives single-cell fault tolerance for this fault class.
  FaultSpec spec;
  spec.kind = FaultKind::kStuckCompleteHigh;
  spec.cell = 2;
  const FaultOutcome o = run_with_fault(kImg1, kImg2, spec);
  EXPECT_FALSE(o.any_effect());
}

TEST(Faults, FaultNamesAreDistinct) {
  EXPECT_STRNE(to_string(FaultKind::kNoSwap), to_string(FaultKind::kDropShift));
  EXPECT_STRNE(to_string(FaultKind::kCorruptXorEnd),
               to_string(FaultKind::kStuckCompleteHigh));
}

TEST(Faults, OutOfRangeFaultCellRejected) {
  FaultSpec spec;
  spec.cell = 1000;
  EXPECT_THROW(run_with_fault(kImg1, kImg2, spec), contract_error);
}

class FaultSweep : public ::testing::TestWithParam<FaultKind> {};

TEST_P(FaultSweep, NoSilentCorruptionOnRandomWorkloads) {
  Rng rng(4040 + static_cast<std::uint64_t>(GetParam()));
  RowGenParams rp;
  rp.width = 600;
  ErrorGenParams ep;
  ep.error_fraction = 0.05;
  int effects = 0;
  for (int trial = 0; trial < 30; ++trial) {
    const RowPairSample s = generate_pair(rng, rp, ep);
    FaultSpec spec;
    spec.kind = GetParam();
    const std::size_t n = s.first.run_count() + s.second.run_count() + 1;
    spec.cell = static_cast<cell_index_t>(rng.uniform(
        0, static_cast<std::int64_t>(n) - 1));
    const FaultOutcome o = run_with_fault(s.first, s.second, spec);
    ASSERT_FALSE(o.silent_corruption())
        << to_string(GetParam()) << " in cell " << spec.cell << ", trial "
        << trial;
    if (o.any_effect()) ++effects;
  }
  // The sweep must actually exercise the fault, not dodge it.
  EXPECT_GT(effects, 0) << to_string(GetParam());
}

TEST(Faults, ExhaustiveKindByCellSweepHasNoSilentCorruption) {
  // Satellite acceptance sweep: every FaultKind in every cell of the array,
  // on a spread of small row pairs covering the edge shapes (the Figure-1
  // pair, empty rows, identical rows, single runs, disjoint runs).  A
  // silent corruption anywhere is a checker gap.
  const std::vector<std::pair<RleRow, RleRow>> pairs = {
      {kImg1, kImg2},
      {RleRow{}, RleRow{}},
      {kImg1, kImg1},                    // identical -> empty XOR
      {RleRow{}, kImg2},                 // one side empty
      {RleRow{{0, 2}}, RleRow{{10, 2}}}, // the stuck-complete trap
      {RleRow{{5, 5}}, RleRow{{7, 2}}},  // containment
  };
  const FaultKind kinds[] = {FaultKind::kNoSwap, FaultKind::kCorruptXorEnd,
                             FaultKind::kDropShift,
                             FaultKind::kStuckCompleteHigh};
  for (std::size_t p = 0; p < pairs.size(); ++p) {
    const auto& [a, b] = pairs[p];
    const std::size_t cells = a.run_count() + b.run_count() + 1;
    for (const FaultKind kind : kinds) {
      for (cell_index_t cell = 0; cell < cells; ++cell) {
        FaultSpec spec;
        spec.kind = kind;
        spec.cell = cell;
        const FaultOutcome o = run_with_fault(a, b, spec);
        ASSERT_FALSE(o.silent_corruption())
            << to_string(kind) << " in cell " << cell << ", pair " << p;
      }
    }
  }
}

TEST(Faults, TransientWindowActivatesExactlyOnSchedule) {
  FaultSpec spec;
  spec.activation = FaultActivation::kTransient;
  spec.window_start = 3;
  spec.window_length = 2;
  FaultArbiter arbiter(spec);
  // 1-based global cycles: active exactly in cycles 3 and 4.
  EXPECT_FALSE(arbiter.next());  // cycle 1
  EXPECT_FALSE(arbiter.next());  // cycle 2
  EXPECT_TRUE(arbiter.next());   // cycle 3
  EXPECT_TRUE(arbiter.next());   // cycle 4
  EXPECT_FALSE(arbiter.next());  // cycle 5
  EXPECT_EQ(arbiter.cycles(), 5u);
}

TEST(Faults, IntermittentArbiterIsDeterministicAndRespectsExtremes) {
  FaultSpec spec;
  spec.activation = FaultActivation::kIntermittent;
  spec.probability = 0.5;
  spec.seed = 77;
  FaultArbiter x(spec), y(spec);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(x.next(), y.next()) << i;

  spec.probability = 0.0;
  FaultArbiter never(spec);
  for (int i = 0; i < 64; ++i) EXPECT_FALSE(never.next());

  spec.probability = 1.0;
  FaultArbiter always(spec);
  for (int i = 0; i < 64; ++i) EXPECT_TRUE(always.next());

  spec.probability = 1.5;
  EXPECT_THROW(FaultArbiter bad(spec), contract_error);
}

TEST(Faults, TransientFaultAfterTerminationHasNoEffect) {
  FaultSpec spec;
  spec.kind = FaultKind::kNoSwap;
  spec.cell = 0;
  spec.activation = FaultActivation::kTransient;
  spec.window_start = 100;  // the Figure-1 pair terminates in 3 iterations
  const FaultOutcome o = run_with_fault(kImg1, kImg2, spec);
  EXPECT_FALSE(o.any_effect());
  EXPECT_EQ(o.iterations, 3u);
}

TEST(Faults, TransientFaultInFirstCycleIsDetected) {
  FaultSpec spec;
  spec.kind = FaultKind::kNoSwap;
  spec.cell = 0;  // cell 0 must swap in iteration 1 on the Figure-1 input
  spec.activation = FaultActivation::kTransient;
  spec.window_start = 1;
  spec.window_length = 1;
  const FaultOutcome o = run_with_fault(kImg1, kImg2, spec);
  EXPECT_TRUE(o.any_effect());
  EXPECT_FALSE(o.silent_corruption());
}

INSTANTIATE_TEST_SUITE_P(AllKinds, FaultSweep,
                         ::testing::Values(FaultKind::kNoSwap,
                                           FaultKind::kCorruptXorEnd,
                                           FaultKind::kDropShift,
                                           FaultKind::kStuckCompleteHigh),
                         [](const ::testing::TestParamInfo<FaultKind>& param) {
                           switch (param.param) {
                             case FaultKind::kNoSwap:
                               return std::string("NoSwap");
                             case FaultKind::kCorruptXorEnd:
                               return std::string("CorruptXorEnd");
                             case FaultKind::kDropShift:
                               return std::string("DropShift");
                             case FaultKind::kStuckCompleteHigh:
                               return std::string("StuckCompleteHigh");
                           }
                           return std::string("Unknown");
                         });

}  // namespace
}  // namespace sysrle
