// Tests for compressed-domain feature extraction, cross-checked against
// per-pixel computation.

#include "rle/features.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "bitmap/convert.hpp"
#include "common/assert.hpp"
#include "rle/encode.hpp"
#include "workload/rng.hpp"

namespace sysrle {
namespace {

RleImage image_from(std::initializer_list<const char*> rows) {
  std::vector<RleRow> encoded;
  pos_t width = 0;
  for (const char* r : rows) {
    encoded.push_back(encode_bitstring(r));
    width = static_cast<pos_t>(std::string(r).size());
  }
  return RleImage(width, std::move(encoded));
}

RleImage random_image(Rng& rng, pos_t w, pos_t h, double density) {
  BitmapImage bmp(w, h);
  for (pos_t y = 0; y < h; ++y)
    for (pos_t x = 0; x < w; ++x)
      if (rng.bernoulli(density)) bmp.set(x, y, true);
  return bitmap_to_rle(bmp);
}

TEST(Features, ProjectionsOnKnownImage) {
  const RleImage img = image_from({
      "110",
      "011",
      "000",
  });
  EXPECT_EQ(row_projection(img), (std::vector<len_t>{2, 2, 0}));
  EXPECT_EQ(column_projection(img), (std::vector<len_t>{1, 2, 1}));
}

TEST(Features, ProjectionsMatchPerPixelOnRandomImages) {
  Rng rng(141);
  for (int trial = 0; trial < 15; ++trial) {
    const pos_t w = rng.uniform(1, 90);
    const pos_t h = rng.uniform(1, 60);
    const RleImage img = random_image(rng, w, h, 0.4);
    const BitmapImage bmp = rle_to_bitmap(img);
    const auto rows = row_projection(img);
    const auto cols = column_projection(img);
    for (pos_t y = 0; y < h; ++y) {
      len_t count = 0;
      for (pos_t x = 0; x < w; ++x) count += bmp.get(x, y);
      ASSERT_EQ(rows[static_cast<std::size_t>(y)], count) << "row " << y;
    }
    for (pos_t x = 0; x < w; ++x) {
      len_t count = 0;
      for (pos_t y = 0; y < h; ++y) count += bmp.get(x, y);
      ASSERT_EQ(cols[static_cast<std::size_t>(x)], count) << "col " << x;
    }
  }
}

TEST(Features, MomentsOfRectangle) {
  // 4x2 rectangle at (2,1): centroid (3.5, 1.5).
  RleImage img(10, 4);
  img.set_row(1, RleRow{{2, 4}});
  img.set_row(2, RleRow{{2, 4}});
  const ImageMoments m = image_moments(img);
  EXPECT_EQ(m.area, 8);
  EXPECT_DOUBLE_EQ(m.centroid_x, 3.5);
  EXPECT_DOUBLE_EQ(m.centroid_y, 1.5);
  // Variance of 4 consecutive integers = 1.25; times area 8 -> 10.
  EXPECT_NEAR(m.mu20, 10.0, 1e-9);
  EXPECT_NEAR(m.mu02, 2.0, 1e-9);  // variance 0.25 * 8
  EXPECT_NEAR(m.mu11, 0.0, 1e-9);
}

TEST(Features, MomentsMatchPerPixelOnRandomImages) {
  Rng rng(142);
  for (int trial = 0; trial < 10; ++trial) {
    const pos_t w = rng.uniform(1, 80);
    const pos_t h = rng.uniform(1, 50);
    const RleImage img = random_image(rng, w, h, 0.35);
    const BitmapImage bmp = rle_to_bitmap(img);
    double m00 = 0, m10 = 0, m01 = 0;
    for (pos_t y = 0; y < h; ++y)
      for (pos_t x = 0; x < w; ++x)
        if (bmp.get(x, y)) {
          m00 += 1;
          m10 += static_cast<double>(x);
          m01 += static_cast<double>(y);
        }
    const ImageMoments m = image_moments(img);
    ASSERT_EQ(static_cast<double>(m.area), m00);
    if (m00 > 0) {
      ASSERT_NEAR(m.centroid_x, m10 / m00, 1e-9);
      ASSERT_NEAR(m.centroid_y, m01 / m00, 1e-9);
    }
  }
}

TEST(Features, OrientationOfTiltedBar) {
  // A descending diagonal staircase: principal axis slopes down-right, and
  // with image y growing downward the orientation angle is positive.
  RleImage img(48, 20);
  for (pos_t y = 0; y < 20; ++y) img.set_row(y, RleRow{{y * 2, 4}});
  const ImageMoments m = image_moments(img);
  EXPECT_GT(std::abs(m.orientation()), 0.3);
  const ImageMoments empty = image_moments(RleImage(10, 10));
  EXPECT_DOUBLE_EQ(empty.orientation(), 0.0);
  EXPECT_EQ(empty.area, 0);
}

TEST(Features, BoundingBox) {
  const RleImage img = image_from({
      "000000",
      "001100",
      "000110",
      "000000",
  });
  pos_t x0 = 0, y0 = 0, x1 = 0, y1 = 0;
  ASSERT_TRUE(foreground_bbox(img, x0, y0, x1, y1));
  EXPECT_EQ(x0, 2);
  EXPECT_EQ(y0, 1);
  EXPECT_EQ(x1, 4);
  EXPECT_EQ(y1, 2);
  pos_t dummy = 0;
  EXPECT_FALSE(foreground_bbox(RleImage(5, 5), dummy, dummy, dummy, dummy));
}

TEST(Features, FilterShortRuns) {
  const RleRow row{{0, 1}, {3, 2}, {7, 5}};
  EXPECT_EQ(filter_short_runs(row, 1), row);
  EXPECT_EQ(filter_short_runs(row, 2), (RleRow{{3, 2}, {7, 5}}));
  EXPECT_EQ(filter_short_runs(row, 3), (RleRow{{7, 5}}));
  EXPECT_THROW(filter_short_runs(row, 0), contract_error);
}

TEST(Features, BoundaryOfSolidRectangle) {
  RleImage img(8, 6);
  for (pos_t y = 1; y <= 4; ++y) img.set_row(y, RleRow{{1, 6}});
  const RleImage b = boundary(img);
  // A 6x4 rectangle has 2*6 + 2*4 - 4 = 16 boundary pixels.
  EXPECT_EQ(b.stats().foreground_pixels, 16);
  // Interior pixel (3,2) is not boundary; corner (1,1) is.
  const BitmapImage bb = rle_to_bitmap(b);
  EXPECT_FALSE(bb.get(3, 2));
  EXPECT_TRUE(bb.get(1, 1));
}

TEST(Features, BoundaryMatchesPerPixelDefinition) {
  Rng rng(143);
  for (int trial = 0; trial < 10; ++trial) {
    const pos_t w = rng.uniform(2, 50);
    const pos_t h = rng.uniform(2, 40);
    const RleImage img = random_image(rng, w, h, 0.5);
    const BitmapImage bmp = rle_to_bitmap(img);
    const BitmapImage got = rle_to_bitmap(boundary(img));
    for (pos_t y = 0; y < h; ++y)
      for (pos_t x = 0; x < w; ++x) {
        bool expect = false;
        if (bmp.get(x, y)) {
          const bool left = x > 0 && bmp.get(x - 1, y);
          const bool right = x + 1 < w && bmp.get(x + 1, y);
          const bool up = y > 0 && bmp.get(x, y - 1);
          const bool down = y + 1 < h && bmp.get(x, y + 1);
          expect = !(left && right && up && down);
        }
        ASSERT_EQ(got.get(x, y), expect)
            << trial << ": " << x << ',' << y;
      }
  }
}

}  // namespace
}  // namespace sysrle
