// Tests for the synthetic fingerprint ridge workload.

#include "workload/fingerprint.hpp"

#include <gtest/gtest.h>

#include "bitmap/bit_ops.hpp"
#include "bitmap/convert.hpp"
#include "common/assert.hpp"
#include "workload/metrics.hpp"

namespace sysrle {
namespace {

TEST(Fingerprint, RidgeDensityMatchesDutyCycle) {
  Rng rng(91);
  FingerprintParams p;  // ridge 4 of period 8 -> ~50% density
  const BitmapImage img = generate_ridges(rng, p);
  const double density = static_cast<double>(img.popcount()) /
                         (static_cast<double>(p.width) *
                          static_cast<double>(p.height));
  EXPECT_NEAR(density, 0.5, 0.08);
}

TEST(Fingerprint, RowsAreLongRunStructured) {
  Rng rng(92);
  FingerprintParams p;
  const RleImage img = bitmap_to_rle(generate_ridges(rng, p));
  // Wavy stripes: runs are long (mean well above the wobble scale), so the
  // imagery compresses in the way the paper's applications assume.
  const RleImageStats s = img.stats();
  ASSERT_GT(s.total_runs, 0u);
  const double mean_run = static_cast<double>(s.foreground_pixels) /
                          static_cast<double>(s.total_runs);
  EXPECT_GT(mean_run, 10.0);
}

TEST(Fingerprint, DeterministicPerSeed) {
  FingerprintParams p;
  Rng a(5), b(5), c(6);
  EXPECT_EQ(generate_ridges(a, p), generate_ridges(b, p));
  EXPECT_NE(generate_ridges(a, p), generate_ridges(c, p));
}

TEST(Fingerprint, MinutiaeChangeTheImageLocally) {
  Rng rng(93);
  FingerprintParams p;
  const BitmapImage clean = generate_ridges(rng, p);
  BitmapImage marked = clean;
  const auto minutiae = add_minutiae(rng, marked, 12);
  EXPECT_EQ(minutiae.size(), 12u);
  const len_t changed = image_hamming(clean, marked);
  EXPECT_GT(changed, 0);
  // Each minutia touches at most a size x size patch.
  len_t bound = 0;
  for (const Minutia& m : minutiae) bound += m.size * m.size;
  EXPECT_LE(changed, bound);
}

TEST(Fingerprint, MinutiaeStayInBounds) {
  Rng rng(94);
  FingerprintParams p;
  p.width = 64;
  p.height = 64;
  BitmapImage img = generate_ridges(rng, p);
  const auto minutiae = add_minutiae(rng, img, 30);
  for (const Minutia& m : minutiae) {
    EXPECT_GE(m.x, 0);
    EXPECT_GE(m.y, 0);
    EXPECT_LE(m.x + m.size, p.width);
    EXPECT_LE(m.y + m.size, p.height);
  }
}

TEST(Fingerprint, PerturbedPrintStaysSimilar) {
  // The regime the machine excels at: two captures of the same finger
  // differ in a handful of runs.
  Rng rng(95);
  FingerprintParams p;
  const BitmapImage clean = generate_ridges(rng, p);
  BitmapImage other = clean;
  add_minutiae(rng, other, 8);
  const ImageSimilarity sim =
      measure_images(bitmap_to_rle(clean), bitmap_to_rle(other));
  EXPECT_LT(sim.error_fraction, 0.01);
  EXPECT_GT(sim.jaccard, 0.95);
}

TEST(Fingerprint, RejectsBadParameters) {
  Rng rng(96);
  FingerprintParams p;
  p.ridge_width = p.ridge_period;  // must be < period
  EXPECT_THROW(generate_ridges(rng, p), contract_error);
  FingerprintParams q;
  q.width = 0;
  EXPECT_THROW(generate_ridges(rng, q), contract_error);
  BitmapImage tiny(4, 4);
  EXPECT_THROW(add_minutiae(rng, tiny, 1), contract_error);
}

}  // namespace
}  // namespace sysrle
