// Tests for the table printer used by the benchmark harnesses.

#include "common/fixed_table.hpp"

#include <gtest/gtest.h>

namespace sysrle {
namespace {

TEST(FixedTable, AlignedTextOutput) {
  FixedTable t;
  t.set_header({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "23456"});
  const std::string s = t.str();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("-----"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("23456"), std::string::npos);
  // Columns align: every emitted line has the same padded width.
  std::size_t first_len = std::string::npos;
  std::size_t pos = 0;
  while (pos < s.size()) {
    const std::size_t nl = s.find('\n', pos);
    const std::size_t len = nl - pos;
    if (first_len == std::string::npos) first_len = len;
    EXPECT_EQ(len, first_len);
    pos = nl + 1;
  }
}

TEST(FixedTable, RaggedRowsPrintEmptyCells) {
  FixedTable t;
  t.set_header({"a", "b", "c"});
  t.add_row({"1"});
  EXPECT_EQ(t.row_count(), 1u);
  EXPECT_NO_THROW(t.str());
}

TEST(FixedTable, CsvEscaping) {
  FixedTable t;
  t.set_header({"x", "note"});
  t.add_row({"1", "plain"});
  t.add_row({"2", "has,comma"});
  t.add_row({"3", "has\"quote"});
  const std::string csv = t.csv();
  EXPECT_NE(csv.find("x,note\n"), std::string::npos);
  EXPECT_NE(csv.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"has\"\"quote\""), std::string::npos);
}

TEST(FixedTable, NumFormatting) {
  EXPECT_EQ(FixedTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(FixedTable::num(2.0, 0), "2");
  EXPECT_EQ(FixedTable::num(std::int64_t{-7}), "-7");
  EXPECT_EQ(FixedTable::num(std::uint64_t{42}), "42");
}

TEST(FixedTable, NoHeaderMeansNoUnderline) {
  FixedTable t;
  t.add_row({"only", "data"});
  const std::string s = t.str();
  EXPECT_EQ(s.find('-'), std::string::npos);
}

}  // namespace
}  // namespace sysrle
