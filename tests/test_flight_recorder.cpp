// Tests for the flight recorder: lock-free ring semantics (ordering, wrap,
// torn-read rejection), per-request timelines, anomaly retention bounds,
// the JSONL / Chrome-trace exporters (including a golden hedge-win dump
// pinned byte-for-byte), and a concurrent writer/snapshot hammer that CI
// runs under TSan.

#include "telemetry/flight_recorder.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "telemetry/exporters.hpp"
#include "test_util.hpp"

namespace sysrle {
namespace {

using testing::JsonValue;
using testing::parse_json;

RequestContext ctx_of(std::uint64_t rid, std::uint32_t attempt = 0,
                      std::int32_t shard = -1, std::int32_t replica = -1) {
  RequestContext ctx;
  ctx.active = true;
  ctx.request_id = rid;
  ctx.attempt = attempt;
  ctx.shard = shard;
  ctx.replica = replica;
  return ctx;
}

/// Tests install/remove the global recorder; make sure no test leaks one.
class FlightRecorderTest : public ::testing::Test {
 protected:
  void TearDown() override { set_flight_recorder(nullptr); }
};

// -------------------------------------------------------------------- ring

TEST(FlightRecorder, RecordsEventsInSeqOrderWithFullPayload) {
  FlightRecorder fr(128);
  fr.record(FlightEventKind::kAdmit, ctx_of(7), "primary");
  fr.record(FlightEventKind::kDispatch, ctx_of(7, 0, 1, 0), "primary", 42);
  fr.record(FlightEventKind::kRespond, ctx_of(7), "completed", 1234);

  const std::vector<FlightEvent> events = fr.snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].seq, 0u);
  EXPECT_EQ(events[1].seq, 1u);
  EXPECT_EQ(events[2].seq, 2u);
  EXPECT_EQ(events[0].kind, FlightEventKind::kAdmit);
  EXPECT_STREQ(events[0].detail, "primary");
  EXPECT_TRUE(events[1].ctx.active);
  EXPECT_EQ(events[1].ctx.request_id, 7u);
  EXPECT_EQ(events[1].ctx.shard, 1);
  EXPECT_EQ(events[1].ctx.replica, 0);
  EXPECT_EQ(events[1].arg, 42u);
  EXPECT_EQ(events[2].kind, FlightEventKind::kRespond);
  EXPECT_LE(events[0].ts_us, events[2].ts_us);
  EXPECT_EQ(fr.recorded(), 3u);
  EXPECT_EQ(fr.dropped(), 0u);
}

TEST(FlightRecorder, CapacityRoundsUpToPowerOfTwoMinimum64) {
  EXPECT_EQ(FlightRecorder(0).capacity(), 64u);
  EXPECT_EQ(FlightRecorder(65).capacity(), 128u);
  EXPECT_EQ(FlightRecorder(1 << 10).capacity(), std::size_t{1} << 10);
}

TEST(FlightRecorder, RingWrapsOverwritingOldestAndCountsDrops) {
  FlightRecorder fr(64);  // the minimum ring
  for (std::uint64_t i = 0; i < 100; ++i)
    fr.record(FlightEventKind::kAdmit, ctx_of(i), "", i);

  EXPECT_EQ(fr.recorded(), 100u);
  EXPECT_EQ(fr.dropped(), 36u);
  const std::vector<FlightEvent> events = fr.snapshot();
  ASSERT_EQ(events.size(), 64u);
  // Only the newest 64 survive, still in seq order.
  EXPECT_EQ(events.front().seq, 36u);
  EXPECT_EQ(events.back().seq, 99u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, 36u + i);
    EXPECT_EQ(events[i].ctx.request_id, 36u + i);
  }
}

TEST(FlightRecorder, TimelineFiltersOneRequestOutOfTheRing) {
  FlightRecorder fr(128);
  fr.record(FlightEventKind::kAdmit, ctx_of(1));
  fr.record(FlightEventKind::kAdmit, ctx_of(2));
  fr.record(FlightEventKind::kDispatch, ctx_of(1, 0, 0, 0));
  fr.record(FlightEventKind::kRespond, ctx_of(2), "completed");
  fr.record(FlightEventKind::kRespond, ctx_of(1), "completed");
  // Inactive contexts never join any timeline.
  fr.record(FlightEventKind::kBreakerTrip, RequestContext{}, "service");

  const std::vector<FlightEvent> one = fr.timeline(1);
  ASSERT_EQ(one.size(), 3u);
  EXPECT_EQ(one[0].kind, FlightEventKind::kAdmit);
  EXPECT_EQ(one[1].kind, FlightEventKind::kDispatch);
  EXPECT_EQ(one[2].kind, FlightEventKind::kRespond);
  EXPECT_TRUE(fr.timeline(99).empty());
}

TEST(FlightRecorder, KindNamesAreSnakeCase) {
  EXPECT_STREQ(to_string(FlightEventKind::kAdmit), "admit");
  EXPECT_STREQ(to_string(FlightEventKind::kHedgeFired), "hedge_fired");
  EXPECT_STREQ(to_string(FlightEventKind::kCoalescePromoted),
               "coalesce_promoted");
  EXPECT_STREQ(to_string(FlightEventKind::kDeadlineExpired),
               "deadline_expired");
  EXPECT_STREQ(to_string(FlightEventKind::kRespond), "respond");
}

// --------------------------------------------------------------- retention

TEST(FlightRecorder, RetainCopiesTimelineOutOfTheRing) {
  FlightRecorder fr(64);
  fr.record(FlightEventKind::kAdmit, ctx_of(5));
  fr.record(FlightEventKind::kShed, ctx_of(5), "queue_full");
  fr.retain(5, "shed");
  // The ring wraps far past request 5; the retained copy must survive.
  for (std::uint64_t i = 0; i < 200; ++i)
    fr.record(FlightEventKind::kAdmit, ctx_of(1000 + i));

  EXPECT_TRUE(fr.timeline(5).empty()) << "ring view overwritten";
  const std::vector<FlightRecorder::RetainedTimeline> kept = fr.retained();
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_EQ(kept[0].request_id, 5u);
  EXPECT_EQ(kept[0].anomaly, "shed");
  ASSERT_EQ(kept[0].events.size(), 2u);
  EXPECT_EQ(kept[0].events[1].kind, FlightEventKind::kShed);
}

TEST(FlightRecorder, RepeatedRetainKeepsLongerViewAndFirstAnomaly) {
  FlightRecorder fr(128);
  fr.record(FlightEventKind::kAdmit, ctx_of(9));
  fr.retain(9, "first");
  fr.record(FlightEventKind::kRespond, ctx_of(9), "completed");
  fr.retain(9, "second");

  const std::vector<FlightRecorder::RetainedTimeline> kept = fr.retained();
  ASSERT_EQ(kept.size(), 1u) << "same request retains once";
  EXPECT_EQ(kept[0].anomaly, "first");
  EXPECT_EQ(kept[0].events.size(), 2u) << "longer view wins";
}

TEST(FlightRecorder, RetainedSetIsBoundedAndRefusalsAreCounted) {
  FlightRecorder fr(128, /*max_retained=*/2);
  for (std::uint64_t rid = 1; rid <= 4; ++rid) {
    fr.record(FlightEventKind::kAdmit, ctx_of(rid));
    fr.retain(rid, "anomaly");
  }
  EXPECT_EQ(fr.retained().size(), 2u);
  EXPECT_EQ(fr.retain_dropped(), 2u);
  // A refused request's id never entered the set.
  for (const auto& t : fr.retained()) EXPECT_LE(t.request_id, 2u);
}

// ------------------------------------------------------------- global hook

TEST_F(FlightRecorderTest, GlobalHookIsNullByDefaultAndRecordsWhenInstalled) {
  EXPECT_EQ(flight_recorder(), nullptr);
  flight_record(FlightEventKind::kAdmit, ctx_of(1));  // no-op, no crash
  flight_retain(1, "nothing");

  FlightRecorder fr(64);
  set_flight_recorder(&fr);
  EXPECT_EQ(flight_recorder(), &fr);
  flight_record(FlightEventKind::kAdmit, ctx_of(1), "primary");
  flight_retain(1, "anomaly");
  set_flight_recorder(nullptr);
  flight_record(FlightEventKind::kAdmit, ctx_of(2));  // after removal: no-op

  EXPECT_EQ(fr.recorded(), 1u);
  ASSERT_EQ(fr.retained().size(), 1u);
  EXPECT_EQ(fr.retained()[0].request_id, 1u);
}

// ---------------------------------------------------------------- exporters

/// The deterministic hedge-win story used by the golden dump: primary
/// dispatch, hedge fired, hedge wins, primary loses, client responds.
void record_hedge_win(FlightRecorder& fr) {
  fr.record_at(10, FlightEventKind::kAdmit, ctx_of(3), "primary");
  fr.record_at(20, FlightEventKind::kDispatch, ctx_of(3, 0, 0, 0), "primary",
               1);
  fr.record_at(30, FlightEventKind::kHedgeFired, ctx_of(3, 0, 0, 0),
               "in_shard");
  fr.record_at(31, FlightEventKind::kDispatch, ctx_of(3, 1, 0, 1), "hedge",
               2);
  fr.record_at(40, FlightEventKind::kHedgeWon, ctx_of(3, 1, 0, 1));
  fr.record_at(41, FlightEventKind::kRespond, ctx_of(3), "completed", 31);
  fr.retain(3, "hedge_won");
}

TEST(FlightRecorder, GoldenHedgeWinJsonl) {
  FlightRecorder fr(64, 4);
  record_hedge_win(fr);
  std::ostringstream os;
  write_flight_jsonl(fr, os);

  const std::string expected =
      "{\"type\":\"header\",\"schema\":\"sysrle.flight.v1\",\"capacity\":64,"
      "\"recorded\":6,\"dropped\":0,\"retained\":1,\"retain_dropped\":0}\n"
      "{\"type\":\"event\",\"seq\":0,\"ts_us\":10,\"kind\":\"admit\","
      "\"active\":true,\"request_id\":3,\"attempt\":0,\"shard\":-1,"
      "\"replica\":-1,\"detail\":\"primary\",\"arg\":0}\n"
      "{\"type\":\"event\",\"seq\":1,\"ts_us\":20,\"kind\":\"dispatch\","
      "\"active\":true,\"request_id\":3,\"attempt\":0,\"shard\":0,"
      "\"replica\":0,\"detail\":\"primary\",\"arg\":1}\n"
      "{\"type\":\"event\",\"seq\":2,\"ts_us\":30,\"kind\":\"hedge_fired\","
      "\"active\":true,\"request_id\":3,\"attempt\":0,\"shard\":0,"
      "\"replica\":0,\"detail\":\"in_shard\",\"arg\":0}\n"
      "{\"type\":\"event\",\"seq\":3,\"ts_us\":31,\"kind\":\"dispatch\","
      "\"active\":true,\"request_id\":3,\"attempt\":1,\"shard\":0,"
      "\"replica\":1,\"detail\":\"hedge\",\"arg\":2}\n"
      "{\"type\":\"event\",\"seq\":4,\"ts_us\":40,\"kind\":\"hedge_won\","
      "\"active\":true,\"request_id\":3,\"attempt\":1,\"shard\":0,"
      "\"replica\":1,\"detail\":\"\",\"arg\":0}\n"
      "{\"type\":\"event\",\"seq\":5,\"ts_us\":41,\"kind\":\"respond\","
      "\"active\":true,\"request_id\":3,\"attempt\":0,\"shard\":-1,"
      "\"replica\":-1,\"detail\":\"completed\",\"arg\":31}\n"
      "{\"type\":\"retained\",\"request_id\":3,\"anomaly\":\"hedge_won\","
      "\"events\":[{\"seq\":0,\"ts_us\":10,\"kind\":\"admit\","
      "\"active\":true,\"request_id\":3,\"attempt\":0,\"shard\":-1,"
      "\"replica\":-1,\"detail\":\"primary\",\"arg\":0},"
      "{\"seq\":1,\"ts_us\":20,\"kind\":\"dispatch\",\"active\":true,"
      "\"request_id\":3,\"attempt\":0,\"shard\":0,\"replica\":0,"
      "\"detail\":\"primary\",\"arg\":1},"
      "{\"seq\":2,\"ts_us\":30,\"kind\":\"hedge_fired\",\"active\":true,"
      "\"request_id\":3,\"attempt\":0,\"shard\":0,\"replica\":0,"
      "\"detail\":\"in_shard\",\"arg\":0},"
      "{\"seq\":3,\"ts_us\":31,\"kind\":\"dispatch\",\"active\":true,"
      "\"request_id\":3,\"attempt\":1,\"shard\":0,\"replica\":1,"
      "\"detail\":\"hedge\",\"arg\":2},"
      "{\"seq\":4,\"ts_us\":40,\"kind\":\"hedge_won\",\"active\":true,"
      "\"request_id\":3,\"attempt\":1,\"shard\":0,\"replica\":1,"
      "\"detail\":\"\",\"arg\":0},"
      "{\"seq\":5,\"ts_us\":41,\"kind\":\"respond\",\"active\":true,"
      "\"request_id\":3,\"attempt\":0,\"shard\":-1,\"replica\":-1,"
      "\"detail\":\"completed\",\"arg\":31}]}\n";
  EXPECT_EQ(os.str(), expected);
}

TEST(FlightRecorder, JsonlLinesParseIndividually) {
  FlightRecorder fr(64);
  record_hedge_win(fr);
  std::ostringstream os;
  write_flight_jsonl(fr, os);

  std::istringstream in(os.str());
  std::string line;
  std::size_t events = 0, retained = 0;
  ASSERT_TRUE(std::getline(in, line));
  const JsonValue header = parse_json(line);
  EXPECT_EQ(header.at("type").string, "header");
  EXPECT_EQ(header.at("schema").string, "sysrle.flight.v1");
  EXPECT_DOUBLE_EQ(header.at("recorded").number, 6.0);
  while (std::getline(in, line)) {
    const JsonValue v = parse_json(line);
    if (v.at("type").string == "event") ++events;
    if (v.at("type").string == "retained") ++retained;
  }
  EXPECT_EQ(events, 6u);
  EXPECT_EQ(retained, 1u);
}

TEST(FlightRecorder, ChromeTraceLinksHedgeWithFlowEvents) {
  FlightRecorder fr(64);
  record_hedge_win(fr);
  std::ostringstream os;
  write_flight_chrome_trace(fr, os);
  const JsonValue root = parse_json(os.str());

  const JsonValue& events = root.at("traceEvents");
  std::size_t instants = 0;
  bool flow_start = false, flow_end = false;
  for (const JsonValue& e : events.array) {
    const std::string ph = e.at("ph").string;
    if (ph == "i") {
      ++instants;
      EXPECT_EQ(e.at("cat").string, "flight");
      EXPECT_DOUBLE_EQ(e.at("args").at("request_id").number, 3.0);
    } else if (ph == "s") {
      flow_start = true;
      EXPECT_DOUBLE_EQ(e.at("id").number, 3.0);
      // The hedge fired from the primary's lane (shard 0, replica 0).
      EXPECT_DOUBLE_EQ(e.at("tid").number, 1.0);
    } else if (ph == "f") {
      flow_end = true;
      EXPECT_EQ(e.at("bp").string, "e");
      // ... and resolved on the hedge's lane (shard 0, replica 1).
      EXPECT_DOUBLE_EQ(e.at("tid").number, 2.0);
    }
  }
  EXPECT_EQ(instants, 6u);
  EXPECT_TRUE(flow_start);
  EXPECT_TRUE(flow_end);
}

TEST(FlightRecorder, EmptyRecorderExportsHeaderOnly) {
  FlightRecorder fr(64);
  std::ostringstream os;
  write_flight_jsonl(fr, os);
  const std::string dump = os.str();
  EXPECT_EQ(std::count(dump.begin(), dump.end(), '\n'), 1);
  const JsonValue header = parse_json(dump.substr(0, dump.size() - 1));
  EXPECT_DOUBLE_EQ(header.at("recorded").number, 0.0);
  EXPECT_DOUBLE_EQ(header.at("retained").number, 0.0);
}

// ----------------------------------------------------- thread safety (TSan)

TEST(FlightRecorder, ConcurrentWritersAndSnapshotsStayCoherent) {
  // Exercised under -fsanitize=thread in CI: writers hammer a small ring
  // (constant wrapping) while readers snapshot, take timelines, and retain.
  FlightRecorder fr(256);
  constexpr int kWriters = 4;
  constexpr int kEventsPerWriter = 5000;
  std::atomic<bool> stop{false};
  std::atomic<int> ready{0};

  std::thread reader([&] {
    while (!stop.load()) {
      const std::vector<FlightEvent> events = fr.snapshot();
      std::uint64_t prev = 0;
      bool first = true;
      for (const FlightEvent& e : events) {
        if (!first) {
          EXPECT_GT(e.seq, prev) << "snapshot must be seq-sorted";
        }
        prev = e.seq;
        first = false;
        // Payload coherence: every surviving event carries the request id
        // its writer stamped (writer w uses rid = w * 1000000 + i).
        EXPECT_EQ(e.arg, e.ctx.request_id);
      }
      (void)fr.timeline(1000000);
      fr.retain(1000000, "hammer");
    }
  });

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      ready.fetch_add(1);
      while (ready.load() < kWriters) {
      }
      for (int i = 0; i < kEventsPerWriter; ++i) {
        const std::uint64_t rid =
            static_cast<std::uint64_t>(w) * 1000000 + static_cast<std::uint64_t>(i);
        fr.record(FlightEventKind::kAdmit, ctx_of(rid, 0, w, 0), "hammer",
                  rid);
      }
    });
  }
  for (std::thread& t : writers) t.join();
  stop.store(true);
  reader.join();

  EXPECT_EQ(fr.recorded(),
            static_cast<std::uint64_t>(kWriters) * kEventsPerWriter);
  EXPECT_EQ(fr.dropped(),
            static_cast<std::uint64_t>(kWriters) * kEventsPerWriter - 256);
  EXPECT_EQ(fr.snapshot().size(), 256u);
}

}  // namespace
}  // namespace sysrle
