// Tests for the section-5 workload generator.

#include "workload/generator.hpp"

#include <gtest/gtest.h>

#include "common/assert.hpp"
#include "rle/ops.hpp"
#include "workload/metrics.hpp"

namespace sysrle {
namespace {

TEST(Generator, RowRespectsRunLengthRange) {
  Rng rng(901);
  RowGenParams p;
  p.width = 10000;
  const RleRow row = generate_row(rng, p);
  ASSERT_GT(row.run_count(), 0u);
  for (std::size_t i = 0; i + 1 < row.run_count(); ++i) {
    // All but the last run (which may be clipped at the border) honour the
    // paper's 4..20 range.
    EXPECT_GE(row[i].length, 4);
    EXPECT_LE(row[i].length, 20);
  }
  EXPECT_TRUE(row.fits_width(p.width));
}

TEST(Generator, RowsAreCanonical) {
  Rng rng(902);
  RowGenParams p;
  p.width = 5000;
  for (int trial = 0; trial < 10; ++trial)
    EXPECT_TRUE(generate_row(rng, p).is_canonical());
}

TEST(Generator, DensityHitsTarget) {
  Rng rng(903);
  RowGenParams p;
  p.width = 200000;
  for (const double target : {0.1, 0.3, 0.6}) {
    p.density = target;
    const RleRow row = generate_row(rng, p);
    const double actual = static_cast<double>(row.foreground_pixels()) /
                          static_cast<double>(p.width);
    EXPECT_NEAR(actual, target, 0.05) << "target " << target;
  }
}

TEST(Generator, PaperFigure5Regime) {
  // "the image size is 10,000 pixels with approximately 250 runs in the
  //  original image, which translates to a density of 30%"
  Rng rng(904);
  RowGenParams p;  // defaults are the paper's numbers
  const RleRow row = generate_row(rng, p);
  EXPECT_NEAR(static_cast<double>(row.run_count()), 250.0, 50.0);
}

TEST(Generator, RejectsBadParameters) {
  Rng rng(905);
  RowGenParams p;
  p.density = 0.0;
  EXPECT_THROW(generate_row(rng, p), contract_error);
  p.density = 0.3;
  p.min_run_length = 0;
  EXPECT_THROW(generate_row(rng, p), contract_error);
  p.min_run_length = 21;  // > max
  EXPECT_THROW(generate_row(rng, p), contract_error);
}

TEST(Generator, InjectErrorsHitsFraction) {
  Rng rng(906);
  RowGenParams p;
  p.width = 100000;
  const RleRow base = generate_row(rng, p);
  ErrorGenParams err;
  err.error_fraction = 0.05;
  const RleRow second = inject_errors(rng, base, p.width, err);
  const len_t differing = hamming_distance(base, second);
  EXPECT_NEAR(static_cast<double>(differing) / static_cast<double>(p.width),
              0.05, 0.01);
}

TEST(Generator, InjectZeroErrorsIsIdentity) {
  Rng rng(907);
  RowGenParams p;
  p.width = 1000;
  const RleRow base = generate_row(rng, p);
  ErrorGenParams err;
  err.error_fraction = 0.0;
  EXPECT_EQ(inject_errors(rng, base, p.width, err), base);
}

TEST(Generator, InjectErrorRunsFlipsExpectedPixels) {
  Rng rng(908);
  RowGenParams p;
  p.width = 4096;
  const RleRow base = generate_row(rng, p);
  // 6 runs of exactly 4 pixels — Table 1's second regime.  Overlaps between
  // error runs can only reduce the differing-pixel count.
  const RleRow second = inject_error_runs(rng, base, p.width, 6, 4, 4);
  const len_t differing = hamming_distance(base, second);
  EXPECT_LE(differing, 24);
  EXPECT_GT(differing, 0);
}

TEST(Generator, GeneratePairMeasuresErrors) {
  Rng rng(909);
  RowGenParams p;
  p.width = 20000;
  ErrorGenParams err;
  err.error_fraction = 0.02;
  const RowPairSample s = generate_pair(rng, p, err);
  EXPECT_EQ(s.error_pixels, hamming_distance(s.first, s.second));
  EXPECT_GT(s.error_pixels, 0);
}

TEST(Generator, GeneratePairFixedErrors) {
  Rng rng(910);
  RowGenParams p;
  p.width = 2048;
  const RowPairSample s = generate_pair_fixed_errors(rng, p, 6, 4);
  EXPECT_LE(s.error_pixels, 24);
}

TEST(Generator, ImageGeneratorFillsEveryRow) {
  Rng rng(911);
  RowGenParams p;
  p.width = 1000;
  const RleImage img = generate_image(rng, 20, p);
  EXPECT_EQ(img.height(), 20);
  for (pos_t y = 0; y < img.height(); ++y)
    EXPECT_GT(img.row(y).run_count(), 0u) << "row " << y;
  // Rows are independent draws, not copies.
  EXPECT_NE(img.row(0), img.row(1));
}

}  // namespace
}  // namespace sysrle
