// Tests for the 5x7 glyph font and text rasteriser.

#include "workload/glyphs.hpp"

#include <gtest/gtest.h>

#include "common/assert.hpp"

namespace sysrle {
namespace {

TEST(Glyphs, AvailabilityCoversDigitsAndUppercase) {
  for (char c = '0'; c <= '9'; ++c) EXPECT_TRUE(glyph_available(c)) << c;
  for (char c = 'A'; c <= 'Z'; ++c) EXPECT_TRUE(glyph_available(c)) << c;
  EXPECT_TRUE(glyph_available(' '));
  EXPECT_FALSE(glyph_available('a'));
  EXPECT_FALSE(glyph_available('?'));
}

TEST(Glyphs, RenderGlyphDimensions) {
  const BitmapImage g = render_glyph('A');
  EXPECT_EQ(g.width(), kGlyphWidth);
  EXPECT_EQ(g.height(), kGlyphHeight);
  const BitmapImage g3 = render_glyph('A', 3);
  EXPECT_EQ(g3.width(), kGlyphWidth * 3);
  EXPECT_EQ(g3.height(), kGlyphHeight * 3);
  EXPECT_EQ(g3.popcount(), g.popcount() * 9);
}

TEST(Glyphs, GlyphsAreDistinct) {
  const std::string chars = "0123456789ABCXYZ";
  for (std::size_t i = 0; i < chars.size(); ++i)
    for (std::size_t j = i + 1; j < chars.size(); ++j)
      EXPECT_NE(render_glyph(chars[i]), render_glyph(chars[j]))
          << chars[i] << " vs " << chars[j];
}

TEST(Glyphs, SpaceIsBlank) {
  EXPECT_EQ(render_glyph(' ').popcount(), 0);
}

TEST(Glyphs, RenderGlyphRejectsUnsupported) {
  EXPECT_THROW(render_glyph('?'), contract_error);
  EXPECT_THROW(render_glyph('A', 0), contract_error);
}

TEST(Glyphs, RenderTextLayout) {
  const BitmapImage t = render_text("AB");
  // Two glyph cells (5 px) + one gap column between them.
  EXPECT_EQ(t.width(), 11);
  EXPECT_EQ(t.height(), kGlyphHeight);
  EXPECT_EQ(t.popcount(),
            render_glyph('A').popcount() + render_glyph('B').popcount());
  // The gap column (x = 5) is blank.
  for (pos_t y = 0; y < t.height(); ++y) EXPECT_FALSE(t.get(5, y));
}

TEST(Glyphs, UnsupportedCharactersRenderBlank) {
  const BitmapImage t = render_text("A?A");
  const BitmapImage ref = render_text("A A");
  EXPECT_EQ(t, ref);
}

TEST(Glyphs, EmptyText) {
  const BitmapImage t = render_text("");
  EXPECT_EQ(t.popcount(), 0);
}

}  // namespace
}  // namespace sysrle
