// Golden test: the FULL Figure-3 execution trace, line by line.  Any change
// to the cell datapath, the step ordering, the shift direction or the trace
// renderer shows up here as a readable diff against the published execution.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/systolic_diff.hpp"
#include "systolic/trace.hpp"

namespace sysrle {
namespace {

/// Splits into lines with trailing whitespace removed (column padding is a
/// rendering detail, not machine behaviour).
std::vector<std::string> normalised_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    while (!line.empty() && line.back() == ' ') line.pop_back();
    lines.push_back(line);
  }
  return lines;
}

TEST(GoldenTrace, Figure3FullExecution) {
  const RleRow img1{{10, 3}, {16, 2}, {23, 2}, {27, 3}};
  const RleRow img2{{3, 4}, {8, 5}, {15, 5}, {23, 2}, {27, 4}};

  TraceRecorder trace;
  SystolicConfig cfg;
  cfg.capacity = 6;
  cfg.trace = &trace;
  systolic_xor(img1, img2, cfg);

  // The paper's Figure 3, transcribed.  Rows 1.2 (step 2 changes nothing in
  // iteration 1) and everything after 3.1 are elided exactly as in the
  // figure ("And steps 2 and 3 of iteration 3 make no further changes").
  const std::vector<std::string> expected = {
      "Step     Cell0   Cell1   Cell2   Cell3   Cell4   Cell5",
      "Initial  (10,3)  (16,2)  (23,2)  (27,3)",
      "         (3,4)   (8,5)   (15,5)  (23,2)  (27,4)",
      "1.1      (3,4)   (8,5)   (15,5)  (23,2)  (27,4)",
      "         (10,3)  (16,2)  (23,2)  (27,3)",
      "1.3      (3,4)   (8,5)   (15,5)  (23,2)  (27,4)",
      "                 (10,3)  (16,2)  (23,2)  (27,3)",
      "2.1      (3,4)   (8,5)   (15,5)  (23,2)  (27,3)",
      "                 (10,3)  (16,2)  (23,2)  (27,4)",
      "2.2      (3,4)   (8,2)   (15,1)",
      "                         (18,2)          (30,1)",
      "2.3      (3,4)   (8,2)   (15,1)",
      "                                 (18,2)          (30,1)",
      "3.1      (3,4)   (8,2)   (15,1)  (18,2)          (30,1)",
  };

  EXPECT_EQ(normalised_lines(trace.render(/*elide_unchanged=*/true)),
            expected);
}

TEST(GoldenTrace, TwoRunByTwoRunExecution) {
  // Minimal 2-run x 2-run example exercising order, xor-with-split and
  // shift in two iterations; small enough to verify against the paper's
  // rules by hand.
  const RleRow a{{2, 3}, {9, 2}};
  const RleRow b{{4, 2}, {9, 1}};

  TraceRecorder trace;
  SystolicConfig cfg;
  cfg.capacity = 4;
  cfg.trace = &trace;
  const SystolicResult result = systolic_xor(a, b, cfg);

  EXPECT_EQ(result.output, RleRow({{2, 2}, {5, 1}, {10, 1}}));
  EXPECT_EQ(result.counters.iterations, 2u);

  const std::vector<std::string> expected = {
      "Step     Cell0  Cell1   Cell2   Cell3",
      "Initial  (2,3)  (9,2)",
      "         (4,2)  (9,1)",
      "1.1      (2,3)  (9,1)",
      "         (4,2)  (9,2)",
      "1.2      (2,2)",
      "         (5,1)  (10,1)",
      "1.3      (2,2)",
      "                (5,1)   (10,1)",
      "2.1      (2,2)  (5,1)   (10,1)",
  };
  EXPECT_EQ(normalised_lines(trace.render(/*elide_unchanged=*/true)),
            expected);
}

TEST(GoldenTrace, FullRenderContainsElidedRowsToo) {
  const RleRow img1{{10, 3}, {16, 2}, {23, 2}, {27, 3}};
  const RleRow img2{{3, 4}, {8, 5}, {15, 5}, {23, 2}, {27, 4}};
  TraceRecorder trace;
  SystolicConfig cfg;
  cfg.capacity = 6;
  cfg.trace = &trace;
  systolic_xor(img1, img2, cfg);
  const auto lines = normalised_lines(trace.render(false));
  // 1 header + (initial + 3 iterations x 3 steps) frames, each 1 or 2 lines.
  int labels = 0;
  for (const std::string& l : lines)
    if (!l.empty() && l[0] != ' ' && l[0] != 'S') ++labels;
  EXPECT_EQ(labels, 10);  // Initial, 1.1-1.3, 2.1-2.3, 3.1-3.3
}

}  // namespace
}  // namespace sysrle
