// Tests for the image-level diff API across all engines.

#include "core/image_diff.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "bitmap/bit_ops.hpp"
#include "bitmap/convert.hpp"
#include "common/assert.hpp"
#include "workload/generator.hpp"
#include "workload/rng.hpp"

namespace sysrle {
namespace {

RleImage random_image(Rng& rng, pos_t width, pos_t height, double density) {
  RowGenParams p;
  p.width = width;
  p.density = density;
  return generate_image(rng, height, p);
}

TEST(ImageDiff, AllEnginesAgreeWithBitmapGroundTruth) {
  Rng rng(801);
  const RleImage a = random_image(rng, 500, 12, 0.3);
  RleImage b = a;
  for (pos_t y = 0; y < b.height(); ++y) {
    Rng row_rng = rng.split();
    b.set_row(y, inject_errors(row_rng, a.row(y), a.width(), {}));
  }
  const RleImage expected =
      bitmap_to_rle(xor_images(rle_to_bitmap(a), rle_to_bitmap(b)));

  for (const DiffEngine engine :
       {DiffEngine::kSystolic, DiffEngine::kBusSystolic,
        DiffEngine::kSequentialMerge, DiffEngine::kParitySweep,
        DiffEngine::kPixelParallel, DiffEngine::kAdaptive}) {
    ImageDiffOptions opts;
    opts.engine = engine;
    opts.canonicalize_output = true;
    const ImageDiffResult r = image_diff(a, b, opts);
    EXPECT_EQ(r.diff, expected) << to_string(engine);
  }
}

TEST(ImageDiff, DimensionMismatchRejected) {
  const RleImage a(10, 2);
  const RleImage b(10, 3);
  const RleImage c(11, 2);
  EXPECT_THROW(image_diff(a, b), contract_error);
  EXPECT_THROW(image_diff(a, c), contract_error);
}

TEST(ImageDiff, IdenticalImagesGiveEmptyDiff) {
  Rng rng(802);
  const RleImage a = random_image(rng, 300, 8, 0.3);
  const ImageDiffResult r = image_diff(a, a);
  EXPECT_EQ(r.diff.stats().foreground_pixels, 0);
  // One iteration per non-empty row (everything cancels in-cell).
  EXPECT_LE(r.max_row_iterations, 1u);
}

TEST(ImageDiff, CountersAggregateAcrossRows) {
  Rng rng(803);
  const RleImage a = random_image(rng, 400, 6, 0.3);
  RleImage b = a;
  for (pos_t y = 0; y < b.height(); ++y) {
    Rng row_rng = rng.split();
    b.set_row(y, inject_errors(row_rng, a.row(y), a.width(), {}));
  }
  const ImageDiffResult r = image_diff(a, b);
  EXPECT_GT(r.counters.iterations, 0u);
  EXPECT_GE(r.counters.iterations, r.max_row_iterations);
  EXPECT_GT(r.max_row_iterations, 0u);

  ImageDiffOptions seq;
  seq.engine = DiffEngine::kSequentialMerge;
  const ImageDiffResult rs = image_diff(a, b, seq);
  EXPECT_GT(rs.sequential_iterations, 0u);
  EXPECT_EQ(rs.counters.iterations, 0u);  // no machine involved
}

TEST(ImageDiff, EngineNamesAreDistinct) {
  EXPECT_STRNE(to_string(DiffEngine::kSystolic),
               to_string(DiffEngine::kBusSystolic));
  EXPECT_STRNE(to_string(DiffEngine::kParitySweep),
               to_string(DiffEngine::kSequentialMerge));
}

TEST(ImageDiff, EmptyImages) {
  const RleImage a(100, 0);
  const ImageDiffResult r = image_diff(a, a);
  EXPECT_EQ(r.diff.height(), 0);
  EXPECT_EQ(r.counters.iterations, 0u);
}

// The determinism pin: a 4-thread run must be bit-identical to the serial
// run — same RleImage, same aggregated counters, same per-row maxima.  This
// is the guarantee that makes the parallel executor a drop-in replacement
// (scheduling decides who computes a row, never what).
TEST(ImageDiff, ParallelMatchesSerialBitForBit) {
  Rng rng(804);
  const RleImage a = random_image(rng, 600, 64, 0.3);
  RleImage b = a;
  for (pos_t y = 0; y < b.height(); ++y) {
    Rng row_rng = rng.split();
    b.set_row(y, inject_errors(row_rng, a.row(y), a.width(), {}));
  }

  for (const DiffEngine engine :
       {DiffEngine::kSystolic, DiffEngine::kSequentialMerge,
        DiffEngine::kAdaptive}) {
    ImageDiffOptions serial;
    serial.engine = engine;
    serial.threads = 1;
    const ImageDiffResult rs = image_diff(a, b, serial);

    ImageDiffOptions parallel = serial;
    parallel.threads = 4;
    const ImageDiffResult rp = image_diff(a, b, parallel);

    EXPECT_EQ(rp.diff, rs.diff) << to_string(engine);
    EXPECT_EQ(rp.counters.to_string(), rs.counters.to_string())
        << to_string(engine);
    EXPECT_EQ(rp.max_row_iterations, rs.max_row_iterations);
    EXPECT_EQ(rp.sequential_iterations, rs.sequential_iterations);
    EXPECT_EQ(rp.adaptive_systolic_rows, rs.adaptive_systolic_rows);
    EXPECT_EQ(rp.adaptive_sequential_rows, rs.adaptive_sequential_rows);
  }
}

TEST(ImageDiff, ThreadsUsedIsSurfaced) {
  Rng rng(805);
  const RleImage a = random_image(rng, 200, 32, 0.3);
  ImageDiffOptions opts;
  opts.threads = 1;
  const ImageDiffResult serial = image_diff(a, a, opts);
  EXPECT_EQ(serial.threads_used, 1u);
  EXPECT_EQ(serial.parallel_rows, 0u);

  opts.threads = 4;
  const ImageDiffResult parallel = image_diff(a, a, opts);
  EXPECT_GE(parallel.threads_used, 1u);
  EXPECT_LE(parallel.threads_used, 4u);
}

TEST(ImageDiff, ConcurrentCallsShareTheGlobalPool) {
  // Several threads run threaded image_diffs at once (the service's
  // pattern); every caller must still get the exact serial answer.  The
  // TSan CI job runs this for data races.
  Rng rng(807);
  const RleImage a = random_image(rng, 300, 48, 0.3);
  RleImage b = a;
  for (pos_t y = 0; y < b.height(); ++y) {
    Rng row_rng = rng.split();
    b.set_row(y, inject_errors(row_rng, a.row(y), a.width(), {}));
  }
  ImageDiffOptions opts;
  opts.engine = DiffEngine::kAdaptive;
  opts.threads = 1;
  const ImageDiffResult expected = image_diff(a, b, opts);

  opts.threads = 3;
  std::vector<std::thread> callers;
  std::atomic<int> mismatches{0};
  for (int c = 0; c < 4; ++c) {
    callers.emplace_back([&] {
      for (int rep = 0; rep < 3; ++rep) {
        const ImageDiffResult r = image_diff(a, b, opts);
        if (!(r.diff == expected.diff) ||
            r.counters.to_string() != expected.counters.to_string())
          mismatches.fetch_add(1);
      }
    });
  }
  for (std::thread& t : callers) t.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(ImageDiff, AdaptiveRoutesSimilarRowsToSystolic) {
  // Identical images: every row pair has k1 == k2, the most similar shape
  // possible — the adaptive engine must pick the systolic machine for every
  // non-trivial row and never fall back to the merge.
  Rng rng(806);
  const RleImage a = random_image(rng, 300, 16, 0.3);
  ImageDiffOptions opts;
  opts.engine = DiffEngine::kAdaptive;
  const ImageDiffResult r = image_diff(a, a, opts);
  EXPECT_EQ(r.adaptive_sequential_rows, 0u);
  EXPECT_EQ(r.adaptive_systolic_rows, static_cast<std::uint64_t>(a.height()));
  EXPECT_EQ(r.sequential_iterations, 0u);
}

TEST(ImageDiff, AdaptiveRoutesDissimilarRowsToSequential) {
  // Empty rows against heavily fragmented rows: |k1 - k2| == k1 + k2, the
  // most dissimilar shape — every row must take the sequential merge.
  const pos_t width = 400;
  const pos_t height = 8;
  const RleImage empty(width, height);
  RleImage busy(width, height);
  for (pos_t y = 0; y < height; ++y) {
    RleRow row;
    for (pos_t x = 0; x + 1 < width; x += 8) row.push_back(sysrle::Run{x, 2});
    busy.set_row(y, std::move(row));
  }
  ImageDiffOptions opts;
  opts.engine = DiffEngine::kAdaptive;
  const ImageDiffResult r = image_diff(empty, busy, opts);
  EXPECT_EQ(r.adaptive_systolic_rows, 0u);
  EXPECT_EQ(r.adaptive_sequential_rows, static_cast<std::uint64_t>(height));
  EXPECT_GT(r.sequential_iterations, 0u);
  EXPECT_EQ(r.counters.iterations, 0u);  // no machine ran
}

}  // namespace
}  // namespace sysrle
