// Tests for the image-level diff API across all engines.

#include "core/image_diff.hpp"

#include <gtest/gtest.h>

#include "bitmap/bit_ops.hpp"
#include "bitmap/convert.hpp"
#include "common/assert.hpp"
#include "workload/generator.hpp"
#include "workload/rng.hpp"

namespace sysrle {
namespace {

RleImage random_image(Rng& rng, pos_t width, pos_t height, double density) {
  RowGenParams p;
  p.width = width;
  p.density = density;
  return generate_image(rng, height, p);
}

TEST(ImageDiff, AllEnginesAgreeWithBitmapGroundTruth) {
  Rng rng(801);
  const RleImage a = random_image(rng, 500, 12, 0.3);
  RleImage b = a;
  for (pos_t y = 0; y < b.height(); ++y) {
    Rng row_rng = rng.split();
    b.set_row(y, inject_errors(row_rng, a.row(y), a.width(), {}));
  }
  const RleImage expected =
      bitmap_to_rle(xor_images(rle_to_bitmap(a), rle_to_bitmap(b)));

  for (const DiffEngine engine :
       {DiffEngine::kSystolic, DiffEngine::kBusSystolic,
        DiffEngine::kSequentialMerge, DiffEngine::kParitySweep,
        DiffEngine::kPixelParallel}) {
    ImageDiffOptions opts;
    opts.engine = engine;
    opts.canonicalize_output = true;
    const ImageDiffResult r = image_diff(a, b, opts);
    EXPECT_EQ(r.diff, expected) << to_string(engine);
  }
}

TEST(ImageDiff, DimensionMismatchRejected) {
  const RleImage a(10, 2);
  const RleImage b(10, 3);
  const RleImage c(11, 2);
  EXPECT_THROW(image_diff(a, b), contract_error);
  EXPECT_THROW(image_diff(a, c), contract_error);
}

TEST(ImageDiff, IdenticalImagesGiveEmptyDiff) {
  Rng rng(802);
  const RleImage a = random_image(rng, 300, 8, 0.3);
  const ImageDiffResult r = image_diff(a, a);
  EXPECT_EQ(r.diff.stats().foreground_pixels, 0);
  // One iteration per non-empty row (everything cancels in-cell).
  EXPECT_LE(r.max_row_iterations, 1u);
}

TEST(ImageDiff, CountersAggregateAcrossRows) {
  Rng rng(803);
  const RleImage a = random_image(rng, 400, 6, 0.3);
  RleImage b = a;
  for (pos_t y = 0; y < b.height(); ++y) {
    Rng row_rng = rng.split();
    b.set_row(y, inject_errors(row_rng, a.row(y), a.width(), {}));
  }
  const ImageDiffResult r = image_diff(a, b);
  EXPECT_GT(r.counters.iterations, 0u);
  EXPECT_GE(r.counters.iterations, r.max_row_iterations);
  EXPECT_GT(r.max_row_iterations, 0u);

  ImageDiffOptions seq;
  seq.engine = DiffEngine::kSequentialMerge;
  const ImageDiffResult rs = image_diff(a, b, seq);
  EXPECT_GT(rs.sequential_iterations, 0u);
  EXPECT_EQ(rs.counters.iterations, 0u);  // no machine involved
}

TEST(ImageDiff, EngineNamesAreDistinct) {
  EXPECT_STRNE(to_string(DiffEngine::kSystolic),
               to_string(DiffEngine::kBusSystolic));
  EXPECT_STRNE(to_string(DiffEngine::kParitySweep),
               to_string(DiffEngine::kSequentialMerge));
}

TEST(ImageDiff, EmptyImages) {
  const RleImage a(100, 0);
  const ImageDiffResult r = image_diff(a, a);
  EXPECT_EQ(r.diff.height(), 0);
  EXPECT_EQ(r.counters.iterations, 0u);
}

}  // namespace
}  // namespace sysrle
