// Tests for the persistent image store: content-addressed registration,
// dedup, fingerprint-collision refusal, byte-budgeted LRU eviction,
// pin-blocks-evict, accounting identities, and a concurrency hammer for
// TSan (CI runs this binary under ThreadSanitizer).

#include "store/image_store.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/image_diff.hpp"
#include "rle/serialize.hpp"
#include "workload/generator.hpp"
#include "workload/rng.hpp"

namespace sysrle {
namespace {

RleImage make_image(std::uint64_t seed, pos_t rows = 8, pos_t width = 512) {
  Rng rng(seed);
  RowGenParams p;
  p.width = width;
  return generate_image(rng, rows, p);
}

TEST(ImageStore, RegisterAndAcquire) {
  ImageStore store;
  const RleImage img = make_image(1);
  const ImageStore::RegisterResult r = store.register_image(img);
  ASSERT_TRUE(r.ok);
  EXPECT_FALSE(r.deduplicated);
  EXPECT_EQ(r.handle, canonical_fingerprint(img));
  EXPECT_TRUE(store.contains(r.handle));

  const PinnedImage pin = store.acquire(r.handle);
  ASSERT_TRUE(pin);
  EXPECT_EQ(pin.image(), img);
  EXPECT_EQ(pin.handle(), r.handle);

  const StoreStats s = store.stats();
  EXPECT_EQ(s.registered, 1u);
  EXPECT_EQ(s.resident, 1u);
  EXPECT_EQ(s.acquires, 1u);
  EXPECT_EQ(s.pinned, 1u);
  EXPECT_TRUE(s.accounted());
}

TEST(ImageStore, AcquireUnknownHandleIsCountedMiss) {
  ImageStore store;
  EXPECT_FALSE(store.acquire(12345));
  EXPECT_FALSE(store.contains(12345));
  EXPECT_EQ(store.stats().lookup_misses, 1u);
}

TEST(ImageStore, ReRegisterDeduplicates) {
  ImageStore store;
  const RleImage img = make_image(2);
  const ImageStore::RegisterResult first = store.register_image(img);
  const ImageStore::RegisterResult second = store.register_image(img);
  ASSERT_TRUE(second.ok);
  EXPECT_TRUE(second.deduplicated);
  EXPECT_EQ(second.handle, first.handle);
  const StoreStats s = store.stats();
  EXPECT_EQ(s.registered, 1u);
  EXPECT_EQ(s.dedup_hits, 1u);
  EXPECT_TRUE(s.accounted());
}

// The handle is an identity of *pixels*, not of in-memory representation:
// a non-canonical row layout dedups against the canonical registration.
TEST(ImageStore, RepresentationIndependentDedup) {
  ImageStore store;
  RleImage split(10, 1);
  split.set_row(0, RleRow({{0, 2}, {2, 3}}));
  RleImage merged(10, 1);
  merged.set_row(0, RleRow({{0, 5}}));
  const ImageStore::RegisterResult a = store.register_image(split);
  const ImageStore::RegisterResult b = store.register_image(merged);
  ASSERT_TRUE(a.ok);
  EXPECT_TRUE(b.deduplicated);
  EXPECT_EQ(a.handle, b.handle);
  // The resident parse is the canonical one.
  EXPECT_EQ(store.acquire(a.handle).image().row(0), RleRow({{0, 5}}));
}

// A 64-bit collision is unconstructable with the real hash, so the test
// seam pins every fingerprint to one value: the second, different image
// must be refused — never silently shared.
TEST(ImageStore, FingerprintCollisionRefused) {
  StoreConfig cfg;
  cfg.fingerprint_override = [](const RleImage&) { return 7u; };
  ImageStore store(cfg);
  ASSERT_TRUE(store.register_image(make_image(3)).ok);
  const ImageStore::RegisterResult clash = store.register_image(make_image(4));
  EXPECT_FALSE(clash.ok);
  EXPECT_TRUE(clash.collision);
  const StoreStats s = store.stats();
  EXPECT_EQ(s.collisions, 1u);
  EXPECT_EQ(s.registered, 1u);
  EXPECT_TRUE(s.accounted());
  // The incumbent is untouched.
  EXPECT_EQ(store.acquire(7).image(), make_image(3));
}

TEST(ImageStore, EvictsLeastRecentlyUsedFirst) {
  const RleImage a = make_image(10);
  const RleImage b = make_image(11);
  const std::size_t each = canonical_rle_bytes(a).size();
  StoreConfig cfg;
  cfg.capacity_bytes = 2 * each + each / 2;  // room for two, not three
  ImageStore store(cfg);
  const ImageHandle ha = store.register_image(a).handle;
  const ImageHandle hb = store.register_image(b).handle;
  // Touch `a` so `b` is the LRU tail when the third image arrives.
  (void)store.acquire(ha);
  const ImageHandle hc = store.register_image(make_image(12)).handle;
  EXPECT_TRUE(store.contains(ha));
  EXPECT_FALSE(store.contains(hb));
  EXPECT_TRUE(store.contains(hc));
  const StoreStats s = store.stats();
  EXPECT_EQ(s.evicted, 1u);
  EXPECT_TRUE(s.accounted());
}

TEST(ImageStore, PinBlocksEviction) {
  const RleImage a = make_image(20);
  const std::size_t each = canonical_rle_bytes(a).size();
  StoreConfig cfg;
  cfg.capacity_bytes = each + each / 2;  // room for one
  ImageStore store(cfg);
  const ImageHandle ha = store.register_image(a).handle;
  {
    const PinnedImage pin = store.acquire(ha);
    // `a` is pinned and LRU-everything: the new image must not evict it.
    const ImageHandle hb = store.register_image(make_image(21)).handle;
    EXPECT_TRUE(store.contains(ha));
    EXPECT_TRUE(store.contains(hb));
    EXPECT_GT(store.stats().evict_blocked_by_pin, 0u);
    // The pinned image stays readable even while the store is over budget.
    EXPECT_EQ(pin.image(), a);
  }
  // Pin released: the next registration may evict `a` again.
  (void)store.register_image(make_image(22));
  EXPECT_TRUE(store.stats().accounted());
}

// A pin taken before eviction keeps the parsed image alive after the entry
// is gone — and even after the store itself is gone.
TEST(ImageStore, PinSurvivesEvictionAndStoreDestruction) {
  const RleImage a = make_image(30);
  PinnedImage pin;
  {
    StoreConfig cfg;
    cfg.capacity_bytes = canonical_rle_bytes(a).size() + 64;
    ImageStore store(cfg);
    const ImageHandle ha = store.register_image(a).handle;
    pin = store.acquire(ha);
    // Pins block eviction; drop to a plain share to let eviction proceed.
    std::shared_ptr<const RleImage> shared = pin.share();
    pin = PinnedImage();
    (void)store.register_image(make_image(31));
    EXPECT_FALSE(store.contains(ha));
    EXPECT_EQ(*shared, a);  // still alive past eviction
    pin = store.acquire(store.register_image(a).handle);
  }
  EXPECT_EQ(pin.image(), a);  // still alive past the store
}

TEST(ImageStore, ChurnKeepsAccountingAndArenaTight) {
  StoreConfig cfg;
  cfg.capacity_bytes = 16 * 1024;
  cfg.slab_bytes = 4 * 1024;
  ImageStore store(cfg);
  for (std::uint64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(store.register_image(make_image(100 + i, 4, 512)).ok);
    const StoreStats s = store.stats();
    ASSERT_TRUE(s.accounted());
    ASSERT_LE(s.resident_bytes, cfg.capacity_bytes);
    // The arena holds exactly the resident canonical bytes: no leak.
    ASSERT_EQ(store.arena_stats().live_bytes, s.resident_bytes);
  }
  EXPECT_GT(store.stats().evicted, 0u);
  // Slabs whose spans were all released must have been recycled or freed,
  // so reservation stays within a slab or two of the budget.
  EXPECT_LE(store.arena_stats().reserved_bytes,
            cfg.capacity_bytes + 2 * cfg.slab_bytes);
}

// TSan hammer: concurrent registers (forcing evictions), acquires, and
// diffs over pinned images.  The assertions are loose — the point is data
// races, not exact counts.
TEST(ImageStore, ConcurrentRegisterEvictDiffHammer) {
  StoreConfig cfg;
  cfg.capacity_bytes = 32 * 1024;
  cfg.slab_bytes = 8 * 1024;
  ImageStore store(cfg);

  std::vector<ImageHandle> warm;
  for (std::uint64_t i = 0; i < 8; ++i)
    warm.push_back(store.register_image(make_image(200 + i, 4, 512)).handle);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> diffs_done{0};
  std::vector<std::thread> threads;
  // Writers: register a churning stream, evicting the warm set repeatedly.
  for (int t = 0; t < 2; ++t)
    threads.emplace_back([&store, t] {
      for (std::uint64_t i = 0; i < 60; ++i)
        (void)store.register_image(
            make_image(1000 + static_cast<std::uint64_t>(t) * 1000 + i, 4,
                       512));
    });
  // Readers: acquire warm handles (hit or miss, both fine) and diff what
  // they pin; a pinned image must stay intact mid-diff no matter what the
  // writers evict.
  for (int t = 0; t < 2; ++t)
    threads.emplace_back([&store, &warm, &stop, &diffs_done] {
      ImageDiffOptions opt;
      opt.engine = DiffEngine::kParitySweep;
      opt.threads = 1;
      std::size_t i = 0;
      while (!stop.load(std::memory_order_acquire)) {
        const PinnedImage a = store.acquire(warm[i % warm.size()]);
        const PinnedImage b = store.acquire(warm[(i + 1) % warm.size()]);
        ++i;
        if (!a || !b) continue;
        const ImageDiffResult r = image_diff(a.image(), b.image(), opt);
        ASSERT_EQ(r.diff.height(), a.image().height());
        diffs_done.fetch_add(1, std::memory_order_relaxed);
      }
    });
  threads[0].join();
  threads[1].join();
  stop.store(true, std::memory_order_release);
  threads[2].join();
  threads[3].join();

  const StoreStats s = store.stats();
  EXPECT_TRUE(s.accounted());
  EXPECT_GT(s.evicted, 0u);
  EXPECT_EQ(store.arena_stats().live_bytes, s.resident_bytes);
}

}  // namespace
}  // namespace sysrle
