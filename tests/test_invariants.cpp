// Tests for the executable theorem checkers: they must accept every state a
// correct machine reaches and reject hand-tampered states.

#include "core/invariants.hpp"

#include <gtest/gtest.h>

#include "common/assert.hpp"
#include "core/systolic_diff.hpp"
#include "test_util.hpp"
#include "workload/rng.hpp"

namespace sysrle {
namespace {

using RunT = ::sysrle::Run;  // avoid collision with testing::Test::Run

using sysrle::testing::random_row;

LinearArray<DiffCell> array_from(
    std::vector<std::pair<std::optional<RunT>, std::optional<RunT>>> regs) {
  LinearArray<DiffCell> arr(regs.size());
  for (std::size_t i = 0; i < regs.size(); ++i) {
    arr.cell(i).load_small(regs[i].first);
    arr.cell(i).load_big(regs[i].second);
  }
  return arr;
}

TEST(Invariants, ContextCapturesRunCountsAndXor) {
  const RleRow a{{0, 4}};
  const RleRow b{{2, 4}};
  const InvariantContext ctx = make_invariant_context(a, b);
  EXPECT_EQ(ctx.k1, 1u);
  EXPECT_EQ(ctx.k2, 1u);
  EXPECT_EQ(ctx.expected_xor, (RleRow{{0, 2}, {4, 2}}));
}

TEST(Invariants, OrderedLanesPass) {
  const auto arr = array_from({{RunT{0, 2}, RunT{5, 2}},
                               {RunT{10, 2}, RunT{20, 2}},
                               {std::nullopt, std::nullopt}});
  EXPECT_NO_THROW(check_theorem2(arr));
  EXPECT_NO_THROW(check_corollary21_after_xor(arr));
}

TEST(Invariants, OverlappingSmallLaneRejected) {
  const auto arr = array_from({{RunT{0, 5}, std::nullopt},
                               {RunT{3, 2}, std::nullopt}});
  EXPECT_THROW(check_theorem2(arr), contract_error);
}

TEST(Invariants, OutOfOrderBigLaneRejected) {
  const auto arr = array_from({{std::nullopt, RunT{10, 2}},
                               {std::nullopt, RunT{0, 2}}});
  EXPECT_THROW(check_theorem2(arr), contract_error);
}

TEST(Invariants, SmallReachingIntoSameCellBigRejected) {
  // Cor 2.1 part 3: within a cell, small must end before big starts.
  const auto arr = array_from({{RunT{0, 6}, RunT{4, 3}}});
  EXPECT_THROW(check_corollary21_after_xor(arr), contract_error);
}

TEST(Invariants, SmallReachingIntoLaterBigRejected) {
  // Cor 2.1 part 4: small in cell 0 vs big in cell 1.
  const auto arr = array_from({{RunT{0, 10}, std::nullopt},
                               {std::nullopt, RunT{5, 2}}});
  EXPECT_THROW(check_corollary21_after_xor(arr), contract_error);
}

TEST(Invariants, Part5ViolationRejected) {
  // Cell 0 has a big run, cell 1 has empty small, cell 2's small starts
  // before cell 0's big ends -> part 5 violated.
  const auto arr = array_from({{std::nullopt, RunT{10, 5}},
                               {std::nullopt, std::nullopt},
                               {RunT{12, 2}, std::nullopt}});
  EXPECT_THROW(check_corollary21_part5_after_shift(arr), contract_error);
}

TEST(Invariants, Part5PassesWithoutGap) {
  // Same layout but no empty-small cell between: part 5 does not apply.
  const auto arr = array_from({{RunT{0, 1}, RunT{10, 5}},
                               {RunT{5, 1}, std::nullopt},
                               {RunT{12, 2}, std::nullopt}});
  EXPECT_NO_THROW(check_corollary21_part5_after_shift(arr));
}

TEST(Invariants, ConservationDetectsTampering) {
  const RleRow a{{0, 4}};
  const RleRow b{{10, 4}};
  const InvariantContext ctx = make_invariant_context(a, b);
  auto good = array_from({{RunT{0, 4}, std::nullopt},
                          {RunT{10, 4}, std::nullopt}});
  EXPECT_NO_THROW(check_theorem3_conservation(good, ctx));
  auto bad = array_from({{RunT{0, 4}, std::nullopt},
                         {RunT{10, 3}, std::nullopt}});  // one pixel lost
  EXPECT_THROW(check_theorem3_conservation(bad, ctx), contract_error);
}

TEST(Invariants, Corollary11RejectsLateBig) {
  const auto arr = array_from({{std::nullopt, RunT{5, 2}},
                               {std::nullopt, std::nullopt}});
  InvariantContext ctx;
  // After iteration 1 the first cell must have an empty RegBig.
  EXPECT_THROW(check_corollary11(arr, ctx, 1), contract_error);
  EXPECT_NO_THROW(check_corollary11(arr, ctx, 0));
}

TEST(Invariants, FinalStateRejectsUnterminatedMachine) {
  const RleRow a{{0, 4}};
  const RleRow b{{10, 4}};
  const InvariantContext ctx = make_invariant_context(a, b);
  const auto arr = array_from({{RunT{0, 4}, RunT{10, 4}}});
  EXPECT_THROW(check_final_state(arr, ctx), contract_error);
}

TEST(Invariants, EndOfIterationAcceptsRealMachineStates) {
  // Drive real machines step by step and run every checker each iteration.
  Rng rng(404);
  for (int trial = 0; trial < 25; ++trial) {
    const pos_t width = rng.uniform(1, 200);
    const RleRow a = random_row(rng, width, rng.uniform01());
    const RleRow b = random_row(rng, width, rng.uniform01());
    const InvariantContext ctx = make_invariant_context(a, b);
    SystolicConfig cfg;
    SystolicDiffMachine m(a, b, cfg);
    cycle_t it = 0;
    while (!m.terminated()) {
      m.step();
      ++it;
      ASSERT_NO_THROW(check_end_of_iteration(m.array(), ctx, it))
          << "trial " << trial << " iteration " << it;
    }
    ASSERT_NO_THROW(check_final_state(m.array(), ctx));
  }
}

}  // namespace
}  // namespace sysrle
