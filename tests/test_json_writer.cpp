// Tests for the shared JSON writer: escaping, number formatting, structural
// discipline, and round-tripping through the test suite's independent parser.

#include "telemetry/json_writer.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

#include "common/assert.hpp"
#include "test_util.hpp"

namespace sysrle {
namespace {

using testing::JsonValue;
using testing::parse_json;

TEST(JsonEscape, PassesPlainTextThrough) {
  EXPECT_EQ(json_escape("hello world"), "hello world");
}

TEST(JsonEscape, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("line1\nline2"), "line1\\nline2");
  EXPECT_EQ(json_escape("tab\there"), "tab\\there");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
}

TEST(JsonWriter, EmptyObjectAndArray) {
  std::ostringstream obj, arr;
  JsonWriter(obj).begin_object().end_object();
  JsonWriter(arr).begin_array().end_array();
  EXPECT_EQ(parse_json(obj.str()).type, JsonValue::Type::kObject);
  EXPECT_EQ(parse_json(arr.str()).type, JsonValue::Type::kArray);
}

TEST(JsonWriter, NestedStructureRoundTrips) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.member("name", "sysrle");
  w.member("count", std::uint64_t{42});
  w.member("ratio", 0.25);
  w.member("ok", true);
  w.key("nothing");
  w.null();
  w.key("list");
  w.begin_array();
  w.value(1).value(2).value(3);
  w.end_array();
  w.key("nested");
  w.begin_object();
  w.member("deep", std::int64_t{-7});
  w.end_object();
  w.end_object();
  ASSERT_TRUE(w.complete());

  const JsonValue root = parse_json(os.str());
  EXPECT_EQ(root.at("name").string, "sysrle");
  EXPECT_DOUBLE_EQ(root.at("count").number, 42.0);
  EXPECT_DOUBLE_EQ(root.at("ratio").number, 0.25);
  EXPECT_TRUE(root.at("ok").boolean);
  EXPECT_TRUE(root.at("nothing").is_null());
  ASSERT_EQ(root.at("list").array.size(), 3u);
  EXPECT_DOUBLE_EQ(root.at("list").array[1].number, 2.0);
  EXPECT_DOUBLE_EQ(root.at("nested").at("deep").number, -7.0);
}

TEST(JsonWriter, PreservesKeyOrder) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.member("zebra", 1);
  w.member("apple", 2);
  w.end_object();
  const JsonValue root = parse_json(os.str());
  ASSERT_EQ(root.object.size(), 2u);
  EXPECT_EQ(root.object[0].first, "zebra");
  EXPECT_EQ(root.object[1].first, "apple");
}

TEST(JsonWriter, DoublesRoundTripShortest) {
  std::ostringstream os;
  JsonWriter w(os, 0);
  w.begin_array();
  w.value(0.1).value(1e300).value(-2.5);
  w.end_array();
  const JsonValue root = parse_json(os.str());
  EXPECT_DOUBLE_EQ(root.array[0].number, 0.1);
  EXPECT_DOUBLE_EQ(root.array[1].number, 1e300);
  EXPECT_DOUBLE_EQ(root.array[2].number, -2.5);
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  std::ostringstream os;
  JsonWriter w(os, 0);
  w.begin_array();
  w.value(std::numeric_limits<double>::quiet_NaN());
  w.value(std::numeric_limits<double>::infinity());
  w.end_array();
  const JsonValue root = parse_json(os.str());
  EXPECT_TRUE(root.array[0].is_null());
  EXPECT_TRUE(root.array[1].is_null());
}

TEST(JsonWriter, EscapedStringsSurviveRoundTrip) {
  std::ostringstream os;
  JsonWriter w(os, 0);
  w.begin_object();
  w.member("k\"ey", "va\\l\nue");
  w.end_object();
  const JsonValue root = parse_json(os.str());
  EXPECT_EQ(root.at("k\"ey").string, "va\\l\nue");
}

TEST(JsonWriter, CompactModeHasNoNewlines) {
  std::ostringstream os;
  JsonWriter w(os, 0);
  w.begin_object();
  w.member("a", 1);
  w.end_object();
  EXPECT_EQ(os.str().find('\n'), std::string::npos);
}

TEST(JsonWriter, MisuseThrows) {
  {
    std::ostringstream os;
    JsonWriter w(os);
    w.begin_object();
    EXPECT_THROW(w.value(1), contract_error);  // value without a key
  }
  {
    std::ostringstream os;
    JsonWriter w(os);
    w.begin_array();
    EXPECT_THROW(w.key("k"), contract_error);  // key inside an array
  }
  {
    std::ostringstream os;
    JsonWriter w(os);
    EXPECT_THROW(w.end_object(), contract_error);  // nothing open
  }
}

TEST(JsonWriter, CompleteTracksBalance) {
  std::ostringstream os;
  JsonWriter w(os);
  EXPECT_FALSE(w.complete());
  w.begin_object();
  EXPECT_FALSE(w.complete());
  w.end_object();
  EXPECT_TRUE(w.complete());
}

}  // namespace
}  // namespace sysrle
