// Tests for run-based connected-component labeling.

#include "inspect/labeling.hpp"

#include <gtest/gtest.h>

#include "bitmap/convert.hpp"
#include "common/assert.hpp"
#include "rle/encode.hpp"

namespace sysrle {
namespace {

RleImage image_from(std::initializer_list<const char*> rows) {
  std::vector<RleRow> encoded;
  pos_t width = 0;
  for (const char* r : rows) {
    encoded.push_back(encode_bitstring(r));
    width = static_cast<pos_t>(std::string(r).size());
  }
  return RleImage(width, std::move(encoded));
}

TEST(UnionFindTest, BasicMerging) {
  UnionFind uf(5);
  EXPECT_NE(uf.find(0), uf.find(1));
  uf.unite(0, 1);
  EXPECT_EQ(uf.find(0), uf.find(1));
  uf.unite(1, 2);
  EXPECT_EQ(uf.find(0), uf.find(2));
  EXPECT_NE(uf.find(0), uf.find(3));
  EXPECT_THROW(uf.find(5), contract_error);
}

TEST(Labeling, EmptyImageHasNoComponents) {
  const RleImage img(10, 5);
  EXPECT_TRUE(label_components(img).empty());
}

TEST(Labeling, SingleBlob) {
  const RleImage img = image_from({
      "0110",
      "0110",
  });
  const auto comps = label_components(img);
  ASSERT_EQ(comps.size(), 1u);
  EXPECT_EQ(comps[0].label, 1u);
  EXPECT_EQ(comps[0].pixel_count, 4);
  EXPECT_EQ(comps[0].min_x, 1);
  EXPECT_EQ(comps[0].max_x, 2);
  EXPECT_EQ(comps[0].min_y, 0);
  EXPECT_EQ(comps[0].max_y, 1);
  EXPECT_EQ(comps[0].bbox_width(), 2);
  EXPECT_EQ(comps[0].bbox_height(), 2);
}

TEST(Labeling, TwoSeparateBlobs) {
  const RleImage img = image_from({
      "1100011",
      "1100011",
  });
  const auto comps = label_components(img);
  ASSERT_EQ(comps.size(), 2u);
  EXPECT_EQ(comps[0].pixel_count, 4);
  EXPECT_EQ(comps[1].pixel_count, 4);
}

TEST(Labeling, DiagonalTouchDependsOnConnectivity) {
  const RleImage img = image_from({
      "110",
      "011",
  });
  EXPECT_EQ(label_components(img, Connectivity::kEight).size(), 1u);
  // 4-connectivity: [0,1] and [1,2] share column 1 -> still one component.
  EXPECT_EQ(label_components(img, Connectivity::kFour).size(), 1u);

  const RleImage diag = image_from({
      "100",
      "010",
  });
  EXPECT_EQ(label_components(diag, Connectivity::kEight).size(), 1u);
  EXPECT_EQ(label_components(diag, Connectivity::kFour).size(), 2u);
}

TEST(Labeling, UShapeMergesAcrossRows) {
  // The two vertical arms join through the bottom row: one component even
  // though early rows see two separate pieces.
  const RleImage img = image_from({
      "10001",
      "10001",
      "11111",
  });
  const auto comps = label_components(img);
  ASSERT_EQ(comps.size(), 1u);
  EXPECT_EQ(comps[0].pixel_count, 9);
}

TEST(Labeling, MultipleRunsPerRow) {
  const RleImage img = image_from({
      "1010101",
      "1111111",
  });
  // Everything merges through the solid second row.
  EXPECT_EQ(label_components(img).size(), 1u);
}

TEST(Labeling, LabelsAssignedInRasterOrder) {
  const RleImage img = image_from({
      "100010",
      "000000",
      "001000",
  });
  const auto comps = label_components(img);
  ASSERT_EQ(comps.size(), 3u);
  EXPECT_EQ(comps[0].min_x, 0);  // first raster run
  EXPECT_EQ(comps[1].min_x, 4);
  EXPECT_EQ(comps[2].min_y, 2);
}

TEST(Labeling, DetailedResultLabelsEveryRun) {
  const RleImage img = image_from({
      "110011",
      "110011",
  });
  const LabelingResult r = label_components_detailed(img);
  EXPECT_EQ(r.components.size(), 2u);
  ASSERT_EQ(r.runs.size(), 4u);
  EXPECT_EQ(r.runs[0].label, r.runs[2].label);  // left column pair
  EXPECT_EQ(r.runs[1].label, r.runs[3].label);  // right column pair
  EXPECT_NE(r.runs[0].label, r.runs[1].label);
  len_t total = 0;
  for (const Component& c : r.components) total += c.pixel_count;
  EXPECT_EQ(total, img.stats().foreground_pixels);
}

}  // namespace
}  // namespace sysrle
