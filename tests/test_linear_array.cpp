// Tests for the generic systolic array skeleton.

#include "systolic/linear_array.hpp"

#include <gtest/gtest.h>

#include <optional>

#include "common/assert.hpp"

namespace sysrle {
namespace {

struct ToyCell {
  int value = 0;
  bool done = false;
};

TEST(LinearArray, RequiresAtLeastOneCell) {
  EXPECT_THROW(LinearArray<ToyCell>(0), contract_error);
  EXPECT_NO_THROW(LinearArray<ToyCell>(1));
}

TEST(LinearArray, CellAccessBoundsChecked) {
  LinearArray<ToyCell> arr(3);
  EXPECT_NO_THROW(arr.cell(2));
  EXPECT_THROW(arr.cell(3), contract_error);
}

TEST(LinearArray, ForEachVisitsEveryCellOnce) {
  LinearArray<ToyCell> arr(5);
  int visits = 0;
  arr.for_each([&](ToyCell& c) {
    c.value = ++visits;
  });
  EXPECT_EQ(visits, 5);
  EXPECT_EQ(arr.cell(0).value, 1);
  EXPECT_EQ(arr.cell(4).value, 5);
}

TEST(LinearArray, ShiftRightMovesValuesSynchronously) {
  LinearArray<ToyCell> arr(4);
  for (cell_index_t i = 0; i < 4; ++i)
    arr.cell(i).value = static_cast<int>(i) + 1;  // 1 2 3 4
  const int out = arr.shift_right(
      [](ToyCell& c) { return c.value; },
      [](ToyCell& c, int v) { c.value = v; }, 99);
  // Feed 99 enters cell 0; 4 leaves the array.
  EXPECT_EQ(out, 4);
  EXPECT_EQ(arr.cell(0).value, 99);
  EXPECT_EQ(arr.cell(1).value, 1);
  EXPECT_EQ(arr.cell(2).value, 2);
  EXPECT_EQ(arr.cell(3).value, 3);
}

TEST(LinearArray, ShiftRightWithOptionals) {
  LinearArray<ToyCell> arr(2);
  // Use a separate lane type to mimic the RegBig lane.
  std::optional<int> fed;
  LinearArray<std::optional<int>> lane(3);
  lane.cell(0) = 7;
  const std::optional<int> out = lane.shift_right(
      [](std::optional<int>& c) {
        std::optional<int> v = c;
        c.reset();
        return v;
      },
      [](std::optional<int>& c, std::optional<int> v) { c = v; }, fed);
  EXPECT_FALSE(out.has_value());
  EXPECT_FALSE(lane.cell(0).has_value());
  EXPECT_EQ(lane.cell(1), 7);
}

TEST(LinearArray, AllOfIsWiredAnd) {
  LinearArray<ToyCell> arr(3);
  EXPECT_TRUE(arr.all_of([](const ToyCell& c) { return !c.done; }));
  arr.cell(1).done = true;
  EXPECT_FALSE(arr.all_of([](const ToyCell& c) { return !c.done; }));
  arr.for_each([](ToyCell& c) { c.done = true; });
  EXPECT_TRUE(arr.all_of([](const ToyCell& c) { return c.done; }));
}

}  // namespace
}  // namespace sysrle
