// Tests for the multi-machine row-farm throughput model.

#include "core/machine_farm.hpp"

#include <gtest/gtest.h>

#include "common/assert.hpp"
#include "rle/ops.hpp"
#include "workload/generator.hpp"
#include "workload/rng.hpp"

namespace sysrle {
namespace {

struct Workload {
  RleImage a{0, 0};
  RleImage b{0, 0};
};

Workload make_workload(std::uint64_t seed, pos_t height) {
  Rng rng(seed);
  RowGenParams p;
  p.width = 2000;
  Workload w;
  w.a = generate_image(rng, height, p);
  w.b = RleImage(p.width, height);
  for (pos_t y = 0; y < height; ++y) {
    ErrorGenParams ep;
    ep.error_fraction = 0.02;
    w.b.set_row(y, inject_errors(rng, w.a.row(y), p.width, ep));
  }
  return w;
}

TEST(MachineFarm, SingleMachineMakespanIsTotalWork) {
  const Workload w = make_workload(61, 16);
  FarmConfig cfg;
  cfg.machines = 1;
  const FarmResult r = simulate_row_farm(w.a, w.b, cfg);
  EXPECT_EQ(r.makespan, r.total_work);
  EXPECT_DOUBLE_EQ(r.utilisation, 1.0);
  EXPECT_GT(r.critical_row, 0u);
  EXPECT_LE(r.critical_row, r.total_work);
}

TEST(MachineFarm, MoreMachinesNeverHurt) {
  const Workload w = make_workload(62, 32);
  cycle_t prev = 0;
  for (const std::size_t m : {1u, 2u, 4u, 8u, 16u}) {
    FarmConfig cfg;
    cfg.machines = m;
    const FarmResult r = simulate_row_farm(w.a, w.b, cfg);
    if (prev) {
      EXPECT_LE(r.makespan, prev) << m << " machines";
    }
    prev = r.makespan;
    // Graham bound for list scheduling: makespan <= work/m + critical row.
    EXPECT_LE(r.makespan,
              r.total_work / m + r.critical_row + 1);
    EXPECT_GE(r.makespan, r.critical_row);
    EXPECT_GE(r.makespan, r.total_work / m);
  }
}

TEST(MachineFarm, LongestFirstNotWorseThanFifoHere) {
  const Workload w = make_workload(63, 64);
  FarmConfig fifo;
  fifo.machines = 8;
  FarmConfig lpt = fifo;
  lpt.policy = FarmConfig::Policy::kLongestFirst;
  const FarmResult rf = simulate_row_farm(w.a, w.b, fifo);
  const FarmResult rl = simulate_row_farm(w.a, w.b, lpt);
  EXPECT_EQ(rf.total_work, rl.total_work);  // same rows, same costs
  // LPT is within the classic (4/3 - 1/3m) factor of optimum, and in
  // practice at least as good as FIFO on this workload.
  EXPECT_LE(rl.makespan, rf.makespan + rl.critical_row);
}

TEST(MachineFarm, OverheadAddsPerRow) {
  const Workload w = make_workload(64, 8);
  FarmConfig zero;
  zero.machines = 1;
  zero.per_row_overhead = 0;
  FarmConfig ten = zero;
  ten.per_row_overhead = 10;
  const FarmResult r0 = simulate_row_farm(w.a, w.b, zero);
  const FarmResult r10 = simulate_row_farm(w.a, w.b, ten);
  EXPECT_EQ(r10.total_work, r0.total_work + 8 * 10);
}

TEST(MachineFarm, RejectsBadConfig) {
  const Workload w = make_workload(65, 4);
  FarmConfig cfg;
  cfg.machines = 0;
  EXPECT_THROW(simulate_row_farm(w.a, w.b, cfg), contract_error);
  const RleImage other(w.a.width(), w.a.height() + 1);
  EXPECT_THROW(simulate_row_farm(w.a, other, FarmConfig{}), contract_error);
}

TEST(MachineFarm, EmptyImageHasZeroWork) {
  const RleImage a(100, 0), b(100, 0);
  const FarmResult r = simulate_row_farm(a, b, FarmConfig{});
  EXPECT_EQ(r.makespan, 0u);
  EXPECT_EQ(r.total_work, 0u);
  EXPECT_DOUBLE_EQ(r.utilisation, 0.0);
}

TEST(MachineFarm, HealthyFarmReportsNoDegradationAndCorrectDiff) {
  const Workload w = make_workload(66, 8);
  const FarmResult r = simulate_row_farm(w.a, w.b, FarmConfig{});
  EXPECT_FALSE(r.degraded);
  EXPECT_EQ(r.failed_machines, 0u);
  EXPECT_EQ(r.redispatched_rows, 0u);
  EXPECT_EQ(r.lost_cycles, 0u);
  ASSERT_EQ(r.diff.height(), w.a.height());
  EXPECT_EQ(r.diff.width(), w.a.width());
  for (pos_t y = 0; y < w.a.height(); ++y)
    EXPECT_EQ(r.diff.row(y), xor_rows(w.a.row(y), w.b.row(y)).canonical())
        << "row " << y;
}

TEST(MachineFarm, KilledMachineMidBoardKeepsDiffCorrectAtDegradedMakespan) {
  // The headline failover property: one machine dies halfway through the
  // board, its in-flight row moves to a survivor, the image-level result is
  // bit-identical and only the schedule degrades.
  const Workload w = make_workload(67, 32);
  FarmConfig healthy;
  healthy.machines = 4;
  const FarmResult base = simulate_row_farm(w.a, w.b, healthy);

  FarmConfig cfg = healthy;
  cfg.failures.push_back({1, base.makespan / 2});
  const FarmResult r = simulate_row_farm(w.a, w.b, cfg);
  EXPECT_TRUE(r.degraded);
  EXPECT_EQ(r.failed_machines, 1u);
  EXPECT_GE(r.makespan, base.makespan);
  EXPECT_EQ(r.total_work, base.total_work);  // useful work is unchanged
  EXPECT_EQ(r.critical_row, base.critical_row);
  EXPECT_EQ(r.diff, base.diff);
  for (pos_t y = 0; y < w.a.height(); ++y)
    ASSERT_EQ(r.diff.row(y), xor_rows(w.a.row(y), w.b.row(y)).canonical())
        << "row " << y;
}

TEST(MachineFarm, InterruptedRowIsRedispatchedWithAccounting) {
  // Kill machine 0 three cycles in: its first row (started at cycle 0, and
  // certainly longer than 3 cycles at this width) is lost and re-run on the
  // survivor, which then carries the whole board alone.
  const Workload w = make_workload(69, 8);
  FarmConfig cfg;
  cfg.machines = 2;
  cfg.failures.push_back({0, 3});
  const FarmResult r = simulate_row_farm(w.a, w.b, cfg);
  EXPECT_TRUE(r.degraded);
  EXPECT_EQ(r.failed_machines, 1u);
  EXPECT_EQ(r.redispatched_rows, 1u);
  EXPECT_EQ(r.lost_cycles, 3u);

  FarmConfig solo;
  solo.machines = 1;
  const FarmResult s = simulate_row_farm(w.a, w.b, solo);
  EXPECT_EQ(r.total_work, s.total_work);
  // The survivor is never idle, so the degraded makespan equals the
  // single-machine one.
  EXPECT_EQ(r.makespan, s.total_work);
  EXPECT_EQ(r.diff, s.diff);
}

TEST(MachineFarm, MachineDeadFromCycleZeroNeverRuns) {
  const Workload w = make_workload(70, 8);
  FarmConfig cfg;
  cfg.machines = 2;
  cfg.failures.push_back({1, 0});
  const FarmResult r = simulate_row_farm(w.a, w.b, cfg);
  EXPECT_TRUE(r.degraded);
  EXPECT_EQ(r.failed_machines, 1u);
  EXPECT_EQ(r.redispatched_rows, 0u);
  EXPECT_EQ(r.lost_cycles, 0u);
  FarmConfig solo;
  solo.machines = 1;
  const FarmResult s = simulate_row_farm(w.a, w.b, solo);
  EXPECT_EQ(r.makespan, s.makespan);
}

TEST(MachineFarm, AllMachinesDyingThrows) {
  const Workload w = make_workload(68, 4);
  FarmConfig cfg;
  cfg.machines = 2;
  cfg.failures.push_back({0, 0});
  cfg.failures.push_back({1, 1});
  EXPECT_THROW(simulate_row_farm(w.a, w.b, cfg), contract_error);
}

TEST(MachineFarm, FailureOnUnknownMachineRejected) {
  const Workload w = make_workload(71, 2);
  FarmConfig cfg;
  cfg.machines = 2;
  cfg.failures.push_back({5, 10});
  EXPECT_THROW(simulate_row_farm(w.a, w.b, cfg), contract_error);
}

TEST(MachineFarm, FlakyMachineBurnsCyclesButDiffStaysCorrect) {
  const Workload w = make_workload(72, 32);
  FarmConfig cfg;
  cfg.machines = 4;
  cfg.flaky.push_back({1, 1.0});  // permanent defect, no breaker relief
  const FarmResult r = simulate_row_farm(w.a, w.b, cfg);
  EXPECT_TRUE(r.degraded);
  EXPECT_GT(r.faulty_dispatches, 0u);
  EXPECT_GT(r.faulty_cycles, 0u);
  EXPECT_EQ(r.breaker_opens, 0u);
  ASSERT_EQ(r.diff.height(), w.a.height());
  for (pos_t y = 0; y < w.a.height(); ++y)
    EXPECT_EQ(r.diff.row(y), xor_rows(w.a.row(y), w.b.row(y)).canonical())
        << "row " << y;
}

TEST(MachineFarm, FlakyFarmRunsAreSeedReproducible) {
  const Workload w = make_workload(73, 16);
  FarmConfig cfg;
  cfg.machines = 4;
  cfg.flaky.push_back({2, 0.5});
  cfg.seed = 99;
  const FarmResult r1 = simulate_row_farm(w.a, w.b, cfg);
  const FarmResult r2 = simulate_row_farm(w.a, w.b, cfg);
  EXPECT_EQ(r1.makespan, r2.makespan);
  EXPECT_EQ(r1.faulty_dispatches, r2.faulty_dispatches);
  EXPECT_EQ(r1.faulty_cycles, r2.faulty_cycles);
  EXPECT_EQ(r1.dispatches, r2.dispatches);
  EXPECT_EQ(r1.diff, r2.diff);
  cfg.seed = 100;
  const FarmResult r3 = simulate_row_farm(w.a, w.b, cfg);
  EXPECT_EQ(r3.diff, r1.diff);  // correctness never depends on the coin
}

TEST(MachineFarm, BreakerQuarantinesPermanentlyFlakyMachine) {
  // The acceptance scenario: with a permanently faulty machine, the farm
  // without breakers keeps feeding it (one wasted service time per
  // dispatch); with breakers it goes closed -> open after the threshold and
  // receives nothing more except half-open probes.
  const Workload w = make_workload(74, 48);
  FarmConfig without;
  without.machines = 4;
  without.flaky.push_back({1, 1.0});
  const FarmResult rw = simulate_row_farm(w.a, w.b, without);

  FarmConfig with = without;
  with.enable_breakers = true;
  with.breaker.failure_threshold = 3;
  with.breaker.open_duration = 1 << 14;  // long enough to stay open here
  const FarmResult rb = simulate_row_farm(w.a, w.b, with);

  // The breaker tripped and stopped the bleed: fewer wasted dispatches and
  // wasted cycles.  Makespan may differ by one dispatch quantum (the healthy
  // machines absorb the re-runs either way), but never degrades beyond it.
  EXPECT_GT(rb.breaker_opens, 0u);
  EXPECT_LT(rb.faulty_dispatches, rw.faulty_dispatches);
  EXPECT_LT(rb.faulty_cycles, rw.faulty_cycles);
  EXPECT_LE(rb.makespan, rw.makespan + rw.critical_row);

  // No dispatches beyond the trip threshold except half-open probes.
  ASSERT_EQ(rb.dispatches.size(), 4u);
  EXPECT_LE(rb.dispatches[1],
            static_cast<std::uint64_t>(with.breaker.failure_threshold) +
                rb.probe_dispatches);
  ASSERT_EQ(rb.breaker_states.size(), 4u);
  EXPECT_EQ(rb.breaker_states[1], BreakerState::kOpen);
  for (const std::size_t healthy : {0u, 2u, 3u})
    EXPECT_EQ(rb.breaker_states[healthy], BreakerState::kClosed);

  // And the diff is still exactly the healthy farm's answer.
  ASSERT_EQ(rb.diff.height(), w.a.height());
  for (pos_t y = 0; y < w.a.height(); ++y)
    EXPECT_EQ(rb.diff.row(y), xor_rows(w.a.row(y), w.b.row(y)).canonical())
        << "row " << y;
}

TEST(MachineFarm, HalfOpenProbeReadmitsRecoveredMachine) {
  // A transiently flaky machine (fails early dispatches, then the window
  // passes): with a short open_duration the breaker re-probes, the probe
  // succeeds, and the machine returns to service.
  const Workload w = make_workload(75, 48);
  FarmConfig cfg;
  cfg.machines = 2;
  cfg.flaky.push_back({1, 0.6});
  cfg.enable_breakers = true;
  cfg.breaker.failure_threshold = 2;
  cfg.breaker.open_duration = 64;  // short: probes happen within the board
  const FarmResult r = simulate_row_farm(w.a, w.b, cfg);
  EXPECT_GT(r.breaker_opens, 0u);
  EXPECT_GT(r.probe_dispatches, 0u);
  for (pos_t y = 0; y < w.a.height(); ++y)
    ASSERT_EQ(r.diff.row(y), xor_rows(w.a.row(y), w.b.row(y)).canonical())
        << "row " << y;
}

TEST(MachineFarm, AllMachinesPermanentlyFlakyWithoutBreakersThrows) {
  const Workload w = make_workload(76, 4);
  FarmConfig cfg;
  cfg.machines = 2;
  cfg.flaky.push_back({0, 1.0});
  cfg.flaky.push_back({1, 1.0});
  EXPECT_THROW(simulate_row_farm(w.a, w.b, cfg), contract_error);
}

TEST(MachineFarm, FlakyUnknownMachineRejected) {
  const Workload w = make_workload(77, 2);
  FarmConfig cfg;
  cfg.machines = 2;
  cfg.flaky.push_back({7, 0.5});
  EXPECT_THROW(simulate_row_farm(w.a, w.b, cfg), contract_error);
}

}  // namespace
}  // namespace sysrle
