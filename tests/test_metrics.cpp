// Tests for the similarity metrics.

#include "workload/metrics.hpp"

#include <gtest/gtest.h>

#include "common/assert.hpp"
#include "rle/encode.hpp"

namespace sysrle {
namespace {

TEST(Metrics, KnownRowPair) {
  const RleRow a = encode_bitstring("11110000");
  const RleRow b = encode_bitstring("00111100");
  const RowSimilarity s = measure_rows(a, b, 8);
  EXPECT_EQ(s.error_pixels, 4);
  EXPECT_DOUBLE_EQ(s.error_fraction, 0.5);
  EXPECT_EQ(s.k1, 1u);
  EXPECT_EQ(s.k2, 1u);
  EXPECT_EQ(s.k3, 2u);
  EXPECT_EQ(s.run_count_difference, 0u);
  EXPECT_DOUBLE_EQ(s.jaccard, 2.0 / 6.0);
}

TEST(Metrics, IdenticalRows) {
  const RleRow a = encode_bitstring("0110");
  const RowSimilarity s = measure_rows(a, a, 4);
  EXPECT_EQ(s.error_pixels, 0);
  EXPECT_EQ(s.k3, 0u);
  EXPECT_DOUBLE_EQ(s.jaccard, 1.0);
}

TEST(Metrics, EmptyRowsJaccardIsOne) {
  const RowSimilarity s = measure_rows(RleRow{}, RleRow{}, 10);
  EXPECT_DOUBLE_EQ(s.jaccard, 1.0);
  EXPECT_EQ(s.error_pixels, 0);
}

TEST(Metrics, RunCountDifference) {
  const RleRow a = encode_bitstring("101010");
  const RleRow b = encode_bitstring("111111");
  const RowSimilarity s = measure_rows(a, b, 6);
  EXPECT_EQ(s.k1, 3u);
  EXPECT_EQ(s.k2, 1u);
  EXPECT_EQ(s.run_count_difference, 2u);
}

TEST(Metrics, WidthMustBePositive) {
  EXPECT_THROW(measure_rows(RleRow{}, RleRow{}, 0), contract_error);
}

TEST(Metrics, ImageAggregation) {
  RleImage a(8, 2), b(8, 2);
  a.set_row(0, encode_bitstring("11110000"));
  b.set_row(0, encode_bitstring("00111100"));
  a.set_row(1, encode_bitstring("11111111"));
  b.set_row(1, encode_bitstring("11111111"));
  const ImageSimilarity s = measure_images(a, b);
  EXPECT_EQ(s.error_pixels, 4);
  EXPECT_DOUBLE_EQ(s.error_fraction, 4.0 / 16.0);
  EXPECT_EQ(s.total_runs_a, 2u);
  EXPECT_EQ(s.total_runs_b, 2u);
  EXPECT_EQ(s.total_runs_xor, 2u);
  EXPECT_EQ(s.sum_run_count_difference, 0u);
  EXPECT_DOUBLE_EQ(s.jaccard, (2.0 + 8.0) / (6.0 + 8.0));
}

TEST(Metrics, ImageDimensionMismatchRejected) {
  const RleImage a(8, 2), b(8, 3);
  EXPECT_THROW(measure_images(a, b), contract_error);
}

}  // namespace
}  // namespace sysrle
