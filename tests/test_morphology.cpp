// Tests for compressed-domain morphology, cross-checked against brute-force
// pixel-space morphology.

#include "rle/morphology.hpp"

#include <gtest/gtest.h>

#include "bitmap/convert.hpp"
#include "common/assert.hpp"
#include "rle/encode.hpp"
#include "workload/rng.hpp"

namespace sysrle {
namespace {

/// Brute-force 2-D dilation/erosion on bitmaps, the independent reference.
BitmapImage brute_morph(const BitmapImage& img, pos_t rx, pos_t ry,
                        bool dilate) {
  BitmapImage out(img.width(), img.height());
  for (pos_t y = 0; y < img.height(); ++y) {
    for (pos_t x = 0; x < img.width(); ++x) {
      bool acc = !dilate;
      for (pos_t dy = -ry; dy <= ry; ++dy) {
        for (pos_t dx = -rx; dx <= rx; ++dx) {
          const pos_t xx = x + dx;
          const pos_t yy = y + dy;
          const bool inside = xx >= 0 && xx < img.width() && yy >= 0 &&
                              yy < img.height();
          const bool v = inside && img.get(xx, yy);
          if (dilate) {
            acc = acc || v;
          } else {
            acc = acc && v;  // background outside erodes the border
          }
        }
      }
      out.set(x, y, acc);
    }
  }
  return out;
}

/// Brute-force erosion with *foreground* outside the image — the reference
/// for the erode half of closing.
BitmapImage brute_erode_foreground(const BitmapImage& img, pos_t rx,
                                   pos_t ry) {
  BitmapImage out(img.width(), img.height());
  for (pos_t y = 0; y < img.height(); ++y) {
    for (pos_t x = 0; x < img.width(); ++x) {
      bool acc = true;
      for (pos_t dy = -ry; dy <= ry; ++dy) {
        for (pos_t dx = -rx; dx <= rx; ++dx) {
          const pos_t xx = x + dx;
          const pos_t yy = y + dy;
          const bool inside = xx >= 0 && xx < img.width() && yy >= 0 &&
                              yy < img.height();
          acc = acc && (!inside || img.get(xx, yy));
        }
      }
      out.set(x, y, acc);
    }
  }
  return out;
}

BitmapImage random_bitmap(Rng& rng, pos_t w, pos_t h, double density) {
  BitmapImage img(w, h);
  for (pos_t y = 0; y < h; ++y)
    for (pos_t x = 0; x < w; ++x)
      if (rng.bernoulli(density)) img.set(x, y, true);
  return img;
}

TEST(Morphology, DilateRowGrowsAndMerges) {
  const RleRow row = encode_bitstring("0100010");
  EXPECT_EQ(dilate_row(row, 1, 7), encode_bitstring("1110111"));
  EXPECT_EQ(dilate_row(row, 2, 7), encode_bitstring("1111111"));
  EXPECT_EQ(dilate_row(row, 0, 7), row);
  EXPECT_TRUE(dilate_row(RleRow{}, 3, 7).empty());
}

TEST(Morphology, DilateRowOutputIsCanonical) {
  const RleRow row = encode_bitstring("0101010101");
  const RleRow d = dilate_row(row, 1, 10);
  EXPECT_TRUE(d.is_canonical());
  EXPECT_EQ(d, encode_bitstring("1111111111"));
}

TEST(Morphology, ErodeRowShrinksAndKills) {
  const RleRow row = encode_bitstring("0111110100");
  EXPECT_EQ(erode_row(row, 1), encode_bitstring("0011100000"));
  EXPECT_EQ(erode_row(row, 2), encode_bitstring("0001000000"));
  EXPECT_TRUE(erode_row(row, 3).empty());
}

TEST(Morphology, ErosionThenDilationIsOpening) {
  // A lone speck disappears under opening; a large block survives intact.
  BitmapImage bmp(20, 10);
  bmp.set(3, 3, true);               // speck
  bmp.fill_rect(8, 2, 8, 6, true);   // block
  const RleImage img = bitmap_to_rle(bmp);
  const RleImage opened = open_image(img, 1, 1);
  BitmapImage expected(20, 10);
  expected.fill_rect(8, 2, 8, 6, true);
  EXPECT_EQ(rle_to_bitmap(opened), expected);
}

TEST(Morphology, ClosingFillsSmallGaps) {
  BitmapImage bmp(20, 5);
  bmp.fill_rect(2, 1, 6, 3, true);
  bmp.fill_rect(9, 1, 6, 3, true);  // 1-px gap at x=8
  const RleImage closed = close_image(bitmap_to_rle(bmp), 1, 0);
  // The gap column is filled where both sides are present.
  const BitmapImage out = rle_to_bitmap(closed);
  for (pos_t y = 1; y < 4; ++y) EXPECT_TRUE(out.get(8, y)) << y;
}

TEST(Morphology, DilationMatchesBruteForce) {
  Rng rng(41);
  for (int trial = 0; trial < 12; ++trial) {
    const pos_t w = rng.uniform(1, 60);
    const pos_t h = rng.uniform(1, 40);
    const pos_t rx = rng.uniform(0, 3);
    const pos_t ry = rng.uniform(0, 3);
    const BitmapImage bmp = random_bitmap(rng, w, h, 0.25);
    const RleImage got = dilate_image(bitmap_to_rle(bmp), rx, ry);
    EXPECT_EQ(rle_to_bitmap(got), brute_morph(bmp, rx, ry, true))
        << "trial " << trial << " r=" << rx << ',' << ry;
  }
}

TEST(Morphology, ErosionMatchesBruteForce) {
  Rng rng(43);
  for (int trial = 0; trial < 12; ++trial) {
    const pos_t w = rng.uniform(1, 60);
    const pos_t h = rng.uniform(1, 40);
    const pos_t rx = rng.uniform(0, 3);
    const pos_t ry = rng.uniform(0, 3);
    const BitmapImage bmp = random_bitmap(rng, w, h, 0.75);
    const RleImage got = erode_image(bitmap_to_rle(bmp), rx, ry);
    EXPECT_EQ(rle_to_bitmap(got), brute_morph(bmp, rx, ry, false))
        << "trial " << trial << " r=" << rx << ',' << ry;
  }
}

TEST(Morphology, ErodeRowForegroundBorderKeepsEdges) {
  const RleRow row = encode_bitstring("1110000111");
  EXPECT_EQ(erode_row(row, 1, 10, BorderPolicy::kForeground),
            encode_bitstring("1100000011"));
  // Background policy via the explicit overload matches the classic one.
  EXPECT_EQ(erode_row(row, 1, 10, BorderPolicy::kBackground),
            erode_row(row, 1));
  // A full row is a fixed point under foreground padding at any radius.
  const RleRow full = encode_bitstring("1111111111");
  EXPECT_EQ(erode_row(full, 3, 10, BorderPolicy::kForeground), full);
  // Adjacent runs are one block to the structuring element.
  const RleRow adjacent{{0, 4}, {4, 4}};
  EXPECT_EQ(erode_row(adjacent, 1, 8, BorderPolicy::kForeground),
            (RleRow{{0, 8}}));
}

TEST(Morphology, ClosingKeepsBorderTouchingForeground) {
  // Regression: closing used to erase border-touching blobs because its
  // erode half assumed background outside the image; the erosion ate back
  // exactly the foreground the dilation had pushed past the edge.  With
  // foreground padding on the erode half, closing is extensive everywhere:
  // one blob touching each of the four edges must survive intact.
  BitmapImage bmp(30, 20);
  bmp.fill_rect(0, 8, 5, 4, true);    // touches left edge
  bmp.fill_rect(25, 8, 5, 4, true);   // touches right edge
  bmp.fill_rect(12, 0, 6, 4, true);   // touches top edge
  bmp.fill_rect(12, 16, 6, 4, true);  // touches bottom edge
  const RleImage img = bitmap_to_rle(bmp);
  const std::pair<pos_t, pos_t> radii[] = {{1, 0}, {0, 1}, {1, 1}, {2, 2}};
  for (const auto& [rx, ry] : radii) {
    const BitmapImage closed = rle_to_bitmap(close_image(img, rx, ry));
    for (pos_t y = 0; y < 20; ++y) {
      for (pos_t x = 0; x < 30; ++x) {
        if (bmp.get(x, y)) {
          EXPECT_TRUE(closed.get(x, y))
              << "lost (" << x << ',' << y << ") at r=" << rx << ',' << ry;
        }
      }
    }
  }
}

TEST(Morphology, ClosingMatchesBruteForceWithForegroundBorder) {
  // Pin the documented border semantics exactly: closing = background-
  // padded dilation followed by foreground-padded erosion.
  Rng rng(53);
  for (int trial = 0; trial < 10; ++trial) {
    const pos_t w = rng.uniform(1, 50);
    const pos_t h = rng.uniform(1, 30);
    const pos_t rx = rng.uniform(0, 3);
    const pos_t ry = rng.uniform(0, 3);
    const BitmapImage bmp = random_bitmap(rng, w, h, 0.3);
    const BitmapImage expected =
        brute_erode_foreground(brute_morph(bmp, rx, ry, true), rx, ry);
    EXPECT_EQ(rle_to_bitmap(close_image(bitmap_to_rle(bmp), rx, ry)),
              expected)
        << "trial " << trial << " r=" << rx << ',' << ry;
  }
}

TEST(Morphology, OpeningIsIdempotent) {
  Rng rng(47);
  const BitmapImage bmp = random_bitmap(rng, 80, 40, 0.4);
  const RleImage once = open_image(bitmap_to_rle(bmp), 1, 1);
  const RleImage twice = open_image(once, 1, 1);
  EXPECT_EQ(rle_to_bitmap(twice), rle_to_bitmap(once));
}

TEST(Morphology, RejectsNegativeRadii) {
  const RleRow row{{0, 3}};
  EXPECT_THROW(dilate_row(row, -1, 10), contract_error);
  EXPECT_THROW(erode_row(row, -1), contract_error);
  const RleImage img(10, 2);
  EXPECT_THROW(dilate_image(img, -1, 0), contract_error);
  EXPECT_THROW(erode_image(img, 0, -1), contract_error);
}

}  // namespace
}  // namespace sysrle
