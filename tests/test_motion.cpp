// Tests for the motion-detection workload.

#include "workload/motion.hpp"

#include <gtest/gtest.h>

#include "common/assert.hpp"
#include "workload/metrics.hpp"

namespace sysrle {
namespace {

TEST(Motion, ObjectsStartInsideTheFrame) {
  Rng rng(1101);
  MotionParams p;
  MotionScene scene(rng, p);
  EXPECT_EQ(scene.objects().size(), p.objects);
  for (const MovingObject& o : scene.objects()) {
    EXPECT_GE(o.x, 0);
    EXPECT_GE(o.y, 0);
    EXPECT_LE(o.x + o.w, p.width);
    EXPECT_LE(o.y + o.h, p.height);
    EXPECT_TRUE(o.dx != 0 || o.dy != 0);
  }
}

TEST(Motion, ObjectsStayInsideAcrossManySteps) {
  Rng rng(1102);
  MotionParams p;
  MotionScene scene(rng, p);
  for (int step = 0; step < 500; ++step) {
    scene.advance();
    for (const MovingObject& o : scene.objects()) {
      ASSERT_GE(o.x, 0);
      ASSERT_GE(o.y, 0);
      ASSERT_LE(o.x + o.w, p.width);
      ASSERT_LE(o.y + o.h, p.height);
    }
  }
}

TEST(Motion, RenderDrawsEveryObject) {
  Rng rng(1103);
  MotionParams p;
  p.objects = 3;
  MotionScene scene(rng, p);
  const BitmapImage frame = scene.render();
  len_t max_area = 0;
  for (const MovingObject& o : scene.objects()) max_area += o.w * o.h;
  EXPECT_GT(frame.popcount(), 0);
  EXPECT_LE(frame.popcount(), max_area);  // overlaps only reduce it
}

TEST(Motion, ConsecutiveFramesAreSimilar) {
  Rng rng(1104);
  MotionParams p;
  const auto frames = generate_motion_sequence(rng, p, 5);
  ASSERT_EQ(frames.size(), 5u);
  for (std::size_t f = 0; f + 1 < frames.size(); ++f) {
    const ImageSimilarity sim = measure_images(frames[f], frames[f + 1]);
    EXPECT_GT(sim.error_pixels, 0);           // something moved
    EXPECT_LT(sim.error_fraction, 0.2);       // but most pixels unchanged
  }
}

TEST(Motion, RejectsBadParameters) {
  Rng rng(1105);
  MotionParams p;
  p.min_size = 0;
  EXPECT_THROW(MotionScene(rng, p), contract_error);
  MotionParams q;
  q.max_size = q.width + 1;
  EXPECT_THROW(MotionScene(rng, q), contract_error);
}

}  // namespace
}  // namespace sysrle
