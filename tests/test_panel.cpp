// Tests for panelized inspection.

#include "inspect/panel.hpp"

#include <gtest/gtest.h>

#include "bitmap/convert.hpp"
#include "common/assert.hpp"
#include "rle/transform.hpp"
#include "workload/pcb.hpp"

namespace sysrle {
namespace {

PanelLayout layout_2x3() {
  PanelLayout l;
  l.board_width = 128;
  l.board_height = 64;
  l.cols = 3;
  l.rows = 2;
  l.spacing_x = 8;
  l.spacing_y = 6;
  l.origin_x = 4;
  l.origin_y = 2;
  return l;
}

RleImage golden_board(std::uint64_t seed) {
  Rng rng(seed);
  PcbParams p;
  p.width = 128;
  p.height = 64;
  p.horizontal_traces = 4;
  p.vertical_traces = 8;
  p.pads = 6;
  return bitmap_to_rle(generate_pcb_artwork(rng, p));
}

TEST(Panel, LayoutArithmetic) {
  const PanelLayout l = layout_2x3();
  EXPECT_EQ(l.panel_width(), 4 + 3 * 128 + 2 * 8);
  EXPECT_EQ(l.panel_height(), 2 + 2 * 64 + 1 * 6);
  EXPECT_EQ(l.board_x(0), 4);
  EXPECT_EQ(l.board_x(2), 4 + 2 * 136);
  EXPECT_EQ(l.board_y(1), 2 + 70);
}

TEST(Panel, ComposeThenCropRoundTrips) {
  const PanelLayout l = layout_2x3();
  const RleImage golden = golden_board(11);
  const RleImage panel = compose_panel(golden, l);
  EXPECT_EQ(panel.width(), l.panel_width());
  EXPECT_EQ(panel.height(), l.panel_height());
  for (std::size_t row = 0; row < l.rows; ++row)
    for (std::size_t col = 0; col < l.cols; ++col) {
      const RleImage board = crop_image(panel, l.board_x(col), l.board_y(row),
                                        l.board_width, l.board_height);
      ASSERT_EQ(board, golden) << col << ',' << row;
    }
  // Total foreground = boards x golden foreground (gutters empty).
  EXPECT_EQ(panel.stats().foreground_pixels,
            6 * golden.stats().foreground_pixels);
}

TEST(Panel, CleanPanelPasses) {
  const PanelLayout l = layout_2x3();
  const RleImage golden = golden_board(12);
  const PanelReport r = inspect_panel(golden, compose_panel(golden, l), l);
  EXPECT_TRUE(r.pass);
  EXPECT_EQ(r.failed_boards, 0u);
  EXPECT_EQ(r.boards.size(), 6u);
}

TEST(Panel, OnlyTheDefectiveBoardFails) {
  const PanelLayout l = layout_2x3();
  const RleImage golden = golden_board(13);
  RleImage panel = compose_panel(golden, l);

  // Scratch a trace inside board (2, 1): clear a 6x3 patch.
  Rng rng(14);
  BitmapImage panel_bmp = rle_to_bitmap(panel);
  const pos_t bx = l.board_x(2);
  const pos_t by = l.board_y(1);
  // Find a copper pixel within the board to anchor the scratch.
  pos_t sx = bx, sy = by;
  for (pos_t y = by; y < by + l.board_height && panel_bmp.get(sx, sy) == false;
       ++y)
    for (pos_t x = bx; x < bx + l.board_width; ++x)
      if (panel_bmp.get(x, y)) {
        sx = x;
        sy = y;
        break;
      }
  ASSERT_TRUE(panel_bmp.get(sx, sy));
  panel_bmp.fill_rect(std::min(sx, bx + l.board_width - 6),
                      std::min(sy, by + l.board_height - 3), 6, 3, false);
  panel = bitmap_to_rle(panel_bmp);

  const PanelReport r = inspect_panel(golden, panel, l);
  EXPECT_FALSE(r.pass);
  EXPECT_EQ(r.failed_boards, 1u);
  EXPECT_FALSE(r.at(2, 1, l).report.pass);
  for (std::size_t row = 0; row < l.rows; ++row)
    for (std::size_t col = 0; col < l.cols; ++col)
      if (!(col == 2 && row == 1)) {
        EXPECT_TRUE(r.at(col, row, l).report.pass) << col << ',' << row;
      }
}

TEST(Panel, AtRejectsOutOfGrid) {
  const PanelLayout l = layout_2x3();
  const RleImage golden = golden_board(15);
  const PanelReport r = inspect_panel(golden, compose_panel(golden, l), l);
  EXPECT_THROW(r.at(3, 0, l), contract_error);
  EXPECT_THROW(r.at(0, 2, l), contract_error);
}

TEST(Panel, RejectsMismatchedGolden) {
  const PanelLayout l = layout_2x3();
  const RleImage wrong(64, 64);
  EXPECT_THROW(compose_panel(wrong, l), contract_error);
  const RleImage golden = golden_board(16);
  const RleImage panel = compose_panel(golden, l);
  EXPECT_THROW(inspect_panel(wrong, panel, l), contract_error);
  PanelLayout bad = l;
  bad.cols = 0;
  EXPECT_THROW(compose_panel(golden, bad), contract_error);
}

}  // namespace
}  // namespace sysrle
