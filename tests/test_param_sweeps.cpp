// Additional parameterized property sweeps: morphology across the radius
// grid, serialization across formats, and a brute-force cross-check of the
// optimised Corollary-2.1(5) checker.

#include <gtest/gtest.h>

#include <tuple>

#include "bitmap/convert.hpp"
#include "common/assert.hpp"
#include "core/invariants.hpp"
#include "core/systolic_diff.hpp"
#include "rle/morphology.hpp"
#include "rle/serialize.hpp"
#include "test_util.hpp"
#include "workload/generator.hpp"
#include "workload/rng.hpp"

namespace sysrle {
namespace {

// ---- morphology sweep ----------------------------------------------------

class MorphologySweep
    : public ::testing::TestWithParam<std::tuple<pos_t, pos_t>> {};

TEST_P(MorphologySweep, DualityAndOrderingProperties) {
  const auto [rx, ry] = GetParam();
  Rng rng(5000 + static_cast<std::uint64_t>(rx) * 17 +
          static_cast<std::uint64_t>(ry));
  BitmapImage bmp(70, 50);
  for (pos_t y = 0; y < 50; ++y)
    for (pos_t x = 0; x < 70; ++x)
      if (rng.bernoulli(0.45)) bmp.set(x, y, true);
  const RleImage img = bitmap_to_rle(bmp);

  const RleImage dil = dilate_image(img, rx, ry);
  const RleImage ero = erode_image(img, rx, ry);
  const RleImage opened = open_image(img, rx, ry);
  const RleImage closed = close_image(img, rx, ry);

  // Anti-extensivity / extensivity: erosion ⊆ image ⊆ dilation,
  // opening ⊆ image ⊆ closing.
  const BitmapImage b_img = rle_to_bitmap(img);
  const BitmapImage b_dil = rle_to_bitmap(dil);
  const BitmapImage b_ero = rle_to_bitmap(ero);
  const BitmapImage b_open = rle_to_bitmap(opened);
  const BitmapImage b_close = rle_to_bitmap(closed);
  for (pos_t y = 0; y < 50; ++y)
    for (pos_t x = 0; x < 70; ++x) {
      if (b_ero.get(x, y)) {
        ASSERT_TRUE(b_img.get(x, y)) << x << ',' << y;
      }
      if (b_img.get(x, y)) {
        ASSERT_TRUE(b_dil.get(x, y)) << x << ',' << y;
        // Closing extensivity holds EVERYWHERE, border included: the erode
        // half of close_image pads with foreground (BorderPolicy), so the
        // erosion cannot eat back the foreground the dilation pushed past
        // the image edge.
        ASSERT_TRUE(b_close.get(x, y)) << x << ',' << y;
      }
      if (b_open.get(x, y)) {
        ASSERT_TRUE(b_img.get(x, y)) << x << ',' << y;
      }
    }

  // Idempotence of opening and closing.
  EXPECT_EQ(rle_to_bitmap(open_image(opened, rx, ry)), b_open);
  EXPECT_EQ(rle_to_bitmap(close_image(closed, rx, ry)), b_close);
}

INSTANTIATE_TEST_SUITE_P(
    RadiusGrid, MorphologySweep,
    ::testing::Combine(::testing::Values<pos_t>(0, 1, 2, 4),
                       ::testing::Values<pos_t>(0, 1, 3)),
    [](const ::testing::TestParamInfo<std::tuple<pos_t, pos_t>>& param) {
      return "rx" + std::to_string(std::get<0>(param.param)) + "_ry" +
             std::to_string(std::get<1>(param.param));
    });

// ---- serialization sweep ---------------------------------------------------

class SerializeSweep : public ::testing::TestWithParam<RleFormat> {};

TEST_P(SerializeSweep, RandomImagesRoundTrip) {
  Rng rng(6000 + static_cast<std::uint64_t>(GetParam()));
  for (int trial = 0; trial < 10; ++trial) {
    RowGenParams p;
    p.width = rng.uniform(1, 800);
    p.density = 0.05 + 0.9 * rng.uniform01();
    const pos_t height = rng.uniform(0, 20);
    const RleImage img = generate_image(rng, height, p);
    std::stringstream ss;
    write_rle(ss, img, GetParam());
    ASSERT_EQ(read_rle(ss), img) << "trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Formats, SerializeSweep,
                         ::testing::Values(RleFormat::kText,
                                           RleFormat::kBinary),
                         [](const ::testing::TestParamInfo<RleFormat>& fmt) {
                           return fmt.param == RleFormat::kText ? "Text"
                                                                 : "Binary";
                         });

// ---- Corollary 2.1(5) checker vs brute force -------------------------------

/// The O(n^2) literal transcription of part 5, used to validate the O(n)
/// prefix-maximum implementation on real machine states.
void check_part5_brute_force(const LinearArray<DiffCell>& array) {
  const std::size_t n = array.size();
  for (cell_index_t i = 0; i < n; ++i) {
    if (!array.cell(i).reg_big()) continue;
    for (cell_index_t j = i + 1; j < n; ++j) {
      if (!array.cell(j).reg_small()) continue;
      bool gap = false;
      for (cell_index_t k = i; k < j; ++k)
        if (!array.cell(k).reg_small()) gap = true;
      if (gap)
        SYSRLE_CHECK(array.cell(i).reg_big()->end() <
                         array.cell(j).reg_small()->start,
                     "Cor2.1(5) brute force");
    }
  }
}

TEST(InvariantCrossCheck, Part5OptimisedMatchesBruteForce) {
  Rng rng(7001);
  for (int trial = 0; trial < 25; ++trial) {
    const pos_t width = rng.uniform(1, 300);
    const RleRow a = sysrle::testing::random_row(rng, width, rng.uniform01());
    const RleRow b = sysrle::testing::random_row(rng, width, rng.uniform01());
    SystolicConfig cfg;
    SystolicDiffMachine m(a, b, cfg);
    while (!m.terminated()) {
      m.step();
      // Both checkers must agree (here: both accept a healthy machine).
      ASSERT_NO_THROW(check_corollary21_part5_after_shift(m.array()));
      ASSERT_NO_THROW(check_part5_brute_force(m.array()));
    }
  }
}

TEST(InvariantCrossCheck, Part5BothRejectTamperedState) {
  LinearArray<DiffCell> arr(3);
  arr.cell(0).load_big(::sysrle::Run{10, 5});   // big ends at 14
  // cell 1 small empty -> gap
  arr.cell(2).load_small(::sysrle::Run{12, 2}); // small starts at 12 < 15: violation
  EXPECT_THROW(check_corollary21_part5_after_shift(arr), contract_error);
  EXPECT_THROW(check_part5_brute_force(arr), contract_error);
}

}  // namespace
}  // namespace sysrle
