// Tests for PBM (P1/P4) reading and writing.

#include "bitmap/pbm_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/assert.hpp"

namespace sysrle {
namespace {

BitmapImage sample_image() {
  BitmapImage img(10, 4);
  img.fill_rect(0, 0, 3, 2, true);
  img.fill_rect(7, 2, 3, 2, true);
  img.set(5, 1, true);
  return img;
}

TEST(PbmIo, AsciiRoundTrip) {
  const BitmapImage img = sample_image();
  std::stringstream ss;
  write_pbm(ss, img, PbmFormat::kAscii);
  EXPECT_EQ(read_pbm(ss), img);
}

TEST(PbmIo, RawRoundTrip) {
  const BitmapImage img = sample_image();
  std::stringstream ss;
  write_pbm(ss, img, PbmFormat::kRaw);
  EXPECT_EQ(read_pbm(ss), img);
}

TEST(PbmIo, RawRoundTripNonByteAlignedWidth) {
  BitmapImage img(13, 3);  // 13 bits -> 2 padded bytes per row
  img.fill_rect(6, 0, 7, 3, true);
  std::stringstream ss;
  write_pbm(ss, img, PbmFormat::kRaw);
  EXPECT_EQ(read_pbm(ss), img);
}

TEST(PbmIo, ParsesCommentsInHeader) {
  std::stringstream ss("P1\n# a comment\n3 2\n# another\n1 0 1\n0 1 0\n");
  const BitmapImage img = read_pbm(ss);
  EXPECT_EQ(img.width(), 3);
  EXPECT_EQ(img.height(), 2);
  EXPECT_EQ(img.to_string(), "101\n010");
}

TEST(PbmIo, P4BitPackingIsMsbFirst) {
  // One row, 8 pixels "10000001" -> byte 0x81.
  std::stringstream ss;
  ss << "P4\n8 1\n";
  ss.put(static_cast<char>(0x81));
  const BitmapImage img = read_pbm(ss);
  EXPECT_EQ(img.to_string(), "10000001");
}

TEST(PbmIo, RejectsBadMagic) {
  std::stringstream ss("P5\n2 2\n....");
  EXPECT_THROW(read_pbm(ss), contract_error);
}

TEST(PbmIo, RejectsTruncatedRaw) {
  std::stringstream ss;
  ss << "P4\n16 2\n";
  ss.put('\xff');  // needs 4 bytes, provide 1
  EXPECT_THROW(read_pbm(ss), contract_error);
}

TEST(PbmIo, RejectsBadAsciiPixel) {
  std::stringstream ss("P1\n2 1\n1 2\n");
  EXPECT_THROW(read_pbm(ss), contract_error);
}

TEST(PbmIo, FileRoundTrip) {
  const BitmapImage img = sample_image();
  const std::string path = ::testing::TempDir() + "/sysrle_pbm_test.pbm";
  write_pbm_file(path, img);
  EXPECT_EQ(read_pbm_file(path), img);
  EXPECT_THROW(read_pbm_file(path + ".does-not-exist"), contract_error);
}

TEST(PbmIo, EmptyImageRoundTrip) {
  const BitmapImage img(0, 0);
  std::stringstream ss;
  write_pbm(ss, img, PbmFormat::kRaw);
  const BitmapImage back = read_pbm(ss);
  EXPECT_EQ(back.width(), 0);
  EXPECT_EQ(back.height(), 0);
}

}  // namespace
}  // namespace sysrle
