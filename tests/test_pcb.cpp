// Tests for the synthetic PCB artwork generator and defect injector.

#include "workload/pcb.hpp"

#include <gtest/gtest.h>

#include "bitmap/bit_ops.hpp"
#include "common/assert.hpp"

namespace sysrle {
namespace {

TEST(Pcb, ArtworkHasCopperButIsNotFull) {
  Rng rng(1001);
  PcbParams p;
  const BitmapImage board = generate_pcb_artwork(rng, p);
  EXPECT_EQ(board.width(), p.width);
  EXPECT_EQ(board.height(), p.height);
  const len_t copper = board.popcount();
  EXPECT_GT(copper, 0);
  EXPECT_LT(copper, p.width * p.height);
}

TEST(Pcb, ArtworkIsDeterministicPerSeed) {
  PcbParams p;
  Rng a(5), b(5), c(6);
  EXPECT_EQ(generate_pcb_artwork(a, p), generate_pcb_artwork(b, p));
  EXPECT_NE(generate_pcb_artwork(a, p), generate_pcb_artwork(c, p));
}

TEST(Pcb, DefectsChangeTheBoard) {
  Rng rng(1002);
  PcbParams p;
  const BitmapImage reference = generate_pcb_artwork(rng, p);
  BitmapImage board = reference;
  DefectParams dp;
  dp.count = 10;
  const auto defects = inject_pcb_defects(rng, board, dp);
  EXPECT_GT(defects.size(), 0u);
  EXPECT_GT(image_hamming(reference, board), 0);
}

TEST(Pcb, DefectBoundingBoxesAreInsideTheBoard) {
  Rng rng(1003);
  PcbParams p;
  BitmapImage board = generate_pcb_artwork(rng, p);
  DefectParams dp;
  dp.count = 25;
  const auto defects = inject_pcb_defects(rng, board, dp);
  for (const InjectedDefect& d : defects) {
    EXPECT_GE(d.x, 0);
    EXPECT_GE(d.y, 0);
    EXPECT_LE(d.x + d.w, p.width);
    EXPECT_LE(d.y + d.h, p.height);
    EXPECT_GE(d.w, 1);
    EXPECT_GE(d.h, 1);
  }
}

TEST(Pcb, DifferencesLieWithinDefectBoxes) {
  Rng rng(1004);
  PcbParams p;
  const BitmapImage reference = generate_pcb_artwork(rng, p);
  BitmapImage board = reference;
  DefectParams dp;
  dp.count = 6;
  const auto defects = inject_pcb_defects(rng, board, dp);
  const BitmapImage diff = xor_images(reference, board);
  for (pos_t y = 0; y < diff.height(); ++y)
    for (pos_t x = 0; x < diff.width(); ++x) {
      if (!diff.get(x, y)) continue;
      bool covered = false;
      for (const InjectedDefect& d : defects)
        covered |= x >= d.x && x < d.x + d.w && y >= d.y && y < d.y + d.h;
      ASSERT_TRUE(covered) << "stray difference at " << x << ',' << y;
    }
}

TEST(Pcb, DefectTypeNames) {
  EXPECT_STREQ(to_string(DefectType::kOpen), "open");
  EXPECT_STREQ(to_string(DefectType::kMissingPad), "missing-pad");
  const InjectedDefect d{DefectType::kShort, 3, 4, 5, 6};
  EXPECT_EQ(d.to_string(), "short at (3,4) 5x6");
}

TEST(Pcb, RejectsDegenerateParameters) {
  Rng rng(1005);
  PcbParams p;
  p.width = 0;
  EXPECT_THROW(generate_pcb_artwork(rng, p), contract_error);
  BitmapImage board(10, 10);
  DefectParams dp;
  dp.min_size = 5;
  dp.max_size = 2;
  EXPECT_THROW(inject_pcb_defects(rng, board, dp), contract_error);
}

}  // namespace
}  // namespace sysrle
