// End-to-end tests for the PCB inspection pipeline, plus the report
// formatter.

#include "inspect/pipeline.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "bitmap/convert.hpp"
#include "common/assert.hpp"
#include "inspect/report.hpp"
#include "inspect/scoring.hpp"
#include "workload/pcb.hpp"

namespace sysrle {
namespace {

struct Fixture {
  RleImage reference{0, 0};
  RleImage scan{0, 0};
  std::vector<InjectedDefect> injected;
};

Fixture make_fixture(std::uint64_t seed, std::size_t defect_count) {
  Rng rng(seed);
  PcbParams p;
  p.width = 512;
  p.height = 128;
  const BitmapImage ref_bmp = generate_pcb_artwork(rng, p);
  BitmapImage scan_bmp = ref_bmp;
  DefectParams dp;
  dp.count = defect_count;
  dp.min_size = 3;  // above the pipeline's default noise gate
  Fixture f;
  f.injected = inject_pcb_defects(rng, scan_bmp, dp);
  f.reference = bitmap_to_rle(ref_bmp);
  f.scan = bitmap_to_rle(scan_bmp);
  return f;
}

TEST(Pipeline, CleanBoardPasses) {
  const Fixture f = make_fixture(2001, 0);
  const InspectionReport r = inspect(f.reference, f.reference);
  EXPECT_TRUE(r.pass);
  EXPECT_TRUE(r.defects.empty());
  EXPECT_EQ(r.difference_pixels, 0);
}

TEST(Pipeline, DefectiveBoardFails) {
  const Fixture f = make_fixture(2002, 8);
  ASSERT_GT(f.injected.size(), 0u);
  const InspectionReport r = inspect(f.reference, f.scan);
  EXPECT_FALSE(r.pass);
  EXPECT_GT(r.defects.size(), 0u);
  EXPECT_GT(r.difference_pixels, 0);
  // The systolic engine actually ran.
  EXPECT_GT(r.diff_counters.iterations, 0u);
}

TEST(Pipeline, EveryDetectedDefectOverlapsAnInjectedOne) {
  const Fixture f = make_fixture(2003, 6);
  const InspectionReport r = inspect(f.reference, f.scan);
  for (const Defect& d : r.defects) {
    bool overlaps = false;
    for (const InjectedDefect& inj : f.injected) {
      const bool x_ok = d.region.min_x < inj.x + inj.w &&
                        inj.x <= d.region.max_x;
      const bool y_ok = d.region.min_y < inj.y + inj.h &&
                        inj.y <= d.region.max_y;
      overlaps |= x_ok && y_ok;
    }
    EXPECT_TRUE(overlaps) << d.to_string();
  }
}

TEST(Pipeline, EnginesAgreeOnDefectCount) {
  const Fixture f = make_fixture(2004, 5);
  InspectionOptions sys;
  sys.engine = DiffEngine::kSystolic;
  InspectionOptions seq;
  seq.engine = DiffEngine::kSequentialMerge;
  const InspectionReport rs = inspect(f.reference, f.scan, sys);
  const InspectionReport rq = inspect(f.reference, f.scan, seq);
  EXPECT_EQ(rs.defects.size(), rq.defects.size());
  EXPECT_EQ(rs.difference_pixels, rq.difference_pixels);
  EXPECT_GT(rq.sequential_iterations, 0u);
}

TEST(Pipeline, AlignmentRecoversKnownShift) {
  const Fixture f = make_fixture(2005, 0);
  const RleImage shifted = shift_image(f.reference, 3);
  InspectionOptions opts;
  opts.alignment_radius = 5;
  const InspectionReport r = inspect(f.reference, shifted, opts);
  EXPECT_EQ(r.applied_shift, -3);
  // After alignment, only border clipping can remain.
  EXPECT_LT(r.difference_pixels,
            f.reference.stats().foreground_pixels / 10);
}

TEST(Pipeline, WithoutAlignmentShiftedScanFails) {
  const Fixture f = make_fixture(2006, 0);
  const RleImage shifted = shift_image(f.reference, 3);
  const InspectionReport r = inspect(f.reference, shifted);
  EXPECT_EQ(r.applied_shift, 0);
  EXPECT_FALSE(r.pass);
}

TEST(Pipeline, ShiftImageClipsAtBorders) {
  RleImage img(10, 1);
  img.set_row(0, RleRow{{0, 3}, {8, 2}});
  const RleImage right = shift_image(img, 5);
  EXPECT_EQ(right.row(0), (RleRow{{5, 3}}));  // second run clipped away? no:
  // (8,2) -> [13,14] fully outside; (0,3) -> [5,7].
  const RleImage left = shift_image(img, -2);
  EXPECT_EQ(left.row(0), (RleRow{{0, 1}, {6, 2}}));
  EXPECT_EQ(shift_image(img, 0), img);
}

TEST(Pipeline, ShiftImageHandlesOverlargeShifts) {
  // Regression: shifts at least as large as the width must yield an
  // all-background image (no clipping arithmetic, no overflow), including
  // at the extreme ends of pos_t where `start + dx` cannot be computed.
  RleImage img(10, 2);
  img.set_row(0, RleRow{{0, 3}, {8, 2}});
  img.set_row(1, RleRow{{4, 4}});
  const RleImage empty(10, 2);
  EXPECT_EQ(shift_image(img, 10), empty);
  EXPECT_EQ(shift_image(img, -10), empty);
  EXPECT_EQ(shift_image(img, 1000000), empty);
  EXPECT_EQ(shift_image(img, std::numeric_limits<pos_t>::max()), empty);
  EXPECT_EQ(shift_image(img, std::numeric_limits<pos_t>::min()), empty);
  // One short of the width leaves exactly one pixel in frame.
  EXPECT_EQ(shift_image(img, 9).row(0), (RleRow{{9, 1}}));
  EXPECT_EQ(shift_image(img, -9).row(0), (RleRow{{0, 1}}));
}

TEST(Pipeline, ShiftImageHandlesDegenerateWidths) {
  const RleImage zero_w(0, 3);
  EXPECT_EQ(shift_image(zero_w, 5), zero_w);
  EXPECT_EQ(shift_image(zero_w, -5), zero_w);
  const RleImage zero_h(10, 0);
  EXPECT_EQ(shift_image(zero_h, 4).height(), 0);
  RleImage one_px(1, 1);
  one_px.set_row(0, RleRow{{0, 1}});
  EXPECT_EQ(shift_image(one_px, 1), RleImage(1, 1));
  EXPECT_EQ(shift_image(one_px, -1), RleImage(1, 1));
  EXPECT_EQ(shift_image(one_px, 0), one_px);
}

TEST(Pipeline, DimensionMismatchRejected) {
  const RleImage a(10, 2), b(10, 3);
  EXPECT_THROW(inspect(a, b), contract_error);
}

TEST(Pipeline, BorderMaskSuppressesAlignmentArtifacts) {
  const Fixture f = make_fixture(2010, 0);
  const RleImage shifted = shift_image(f.reference, 3);
  InspectionOptions opts;
  opts.alignment_radius = 5;
  opts.border_mask = 0;
  const InspectionReport noisy = inspect(f.reference, shifted, opts);
  opts.border_mask = 8;
  const InspectionReport clean = inspect(f.reference, shifted, opts);
  // Without the mask the clipped border columns read as defects; with it
  // the board passes.
  EXPECT_LE(clean.defects.size(), noisy.defects.size());
  EXPECT_TRUE(clean.pass) << clean.defects.size() << " residual defects";
}

TEST(Pipeline, DenoiseOpeningRemovesSpecksKeepsDefects) {
  Fixture f = make_fixture(2011, 3);
  // Sprinkle 1-px salt noise on the scan.
  Rng rng(999);
  BitmapImage scan_bmp = rle_to_bitmap(f.scan);
  for (int i = 0; i < 40; ++i) {
    const pos_t x = rng.uniform(0, scan_bmp.width() - 1);
    const pos_t y = rng.uniform(0, scan_bmp.height() - 1);
    scan_bmp.set(x, y, !scan_bmp.get(x, y));
  }
  const RleImage noisy_scan = bitmap_to_rle(scan_bmp);

  InspectionOptions raw;
  raw.min_defect_area = 1;  // no area gate: count everything
  InspectionOptions denoised = raw;
  denoised.denoise_open_radius = 1;
  const InspectionReport r_raw = inspect(f.reference, noisy_scan, raw);
  const InspectionReport r_dn = inspect(f.reference, noisy_scan, denoised);
  EXPECT_LT(r_dn.defects.size(), r_raw.defects.size());
  // The injected defects (>= 3x3) survive the opening.
  EXPECT_GE(r_dn.defects.size(), 1u);
}

TEST(Pipeline, DetectionScoreAgainstGroundTruth) {
  const Fixture f = make_fixture(2012, 8);
  const InspectionReport r = inspect(f.reference, f.scan);
  const DetectionScore score = score_detections(r.defects, f.injected);
  // Every reported defect sits on an injected one (no false positives on a
  // noise-free scan), and most injected defects are found.
  EXPECT_EQ(score.false_positives, 0u) << score.to_string();
  EXPECT_GE(score.recall(), 0.7) << score.to_string();
}

TEST(Report, FormatsVerdictAndDefects) {
  const Fixture f = make_fixture(2007, 4);
  const InspectionReport r = inspect(f.reference, f.scan);
  const std::string verdict = format_verdict(r);
  const std::string full = format_report(r);
  EXPECT_NE(full.find("inspection report"), std::string::npos);
  EXPECT_NE(full.find(verdict), std::string::npos);
  if (!r.pass) {
    EXPECT_NE(verdict.find("FAIL"), std::string::npos);
    EXPECT_NE(full.find("defects:"), std::string::npos);
    EXPECT_NE(full.find("#1"), std::string::npos);
  }
  const InspectionReport clean = inspect(f.reference, f.reference);
  EXPECT_NE(format_verdict(clean).find("PASS"), std::string::npos);
}

}  // namespace
}  // namespace sysrle
