// Tests for the uncompressed pixel-parallel comparator.

#include "baseline/pixel_parallel.hpp"

#include <gtest/gtest.h>

#include "common/assert.hpp"
#include "test_util.hpp"
#include "workload/rng.hpp"

namespace sysrle {
namespace {

using sysrle::testing::random_row;
using sysrle::testing::reference_xor;

TEST(PixelParallel, PaperFigure1) {
  const RleRow img1{{10, 3}, {16, 2}, {23, 2}, {27, 3}};
  const RleRow img2{{3, 4}, {8, 5}, {15, 5}, {23, 2}, {27, 4}};
  const PixelParallelResult r = pixel_parallel_xor(img1, img2, 40);
  EXPECT_EQ(r.output, (RleRow{{3, 4}, {8, 2}, {15, 1}, {18, 2}, {30, 1}}));
  EXPECT_TRUE(r.output.is_canonical());
}

TEST(PixelParallel, MatchesReferenceOnRandomInputs) {
  Rng rng(701);
  for (int trial = 0; trial < 40; ++trial) {
    const pos_t width = rng.uniform(1, 300);
    const RleRow a = random_row(rng, width, rng.uniform01());
    const RleRow b = random_row(rng, width, rng.uniform01());
    EXPECT_EQ(pixel_parallel_xor(a, b, width).output,
              reference_xor(a, b, width));
  }
}

TEST(PixelParallel, RejectsRowsExceedingWidth) {
  EXPECT_THROW(pixel_parallel_xor(RleRow{{8, 4}}, RleRow{}, 10),
               contract_error);
}

TEST(PixelParallelCostModel, ConversionDominates) {
  const PixelParallelCost c = pixel_parallel_cost(4096);
  EXPECT_EQ(c.processors, 4096);
  EXPECT_EQ(c.xor_depth, 1);
  EXPECT_EQ(c.decompress_steps, 4096);
  EXPECT_EQ(c.recompress_steps, 4096);
  // The paper's point: the O(1) XOR is swamped by format conversion.
  EXPECT_GT(c.total_steps(), 2 * c.xor_depth);
  EXPECT_EQ(c.total_steps(), 4096 + 1 + 4096);
}

TEST(PixelParallelCostModel, RejectsNegativeWidth) {
  EXPECT_THROW(pixel_parallel_cost(-1), contract_error);
}

}  // namespace
}  // namespace sysrle
