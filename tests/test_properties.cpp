// Cross-engine property suite: for a grid of workload regimes (width,
// density, error model) and many seeds, every engine must produce the same
// XOR, and every theorem of section 4 plus the section-5 bounds must hold.

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "baseline/pixel_parallel.hpp"
#include "baseline/sequential_diff.hpp"
#include "baseline/word_diff.hpp"
#include "core/bus_variant.hpp"
#include "core/cost_model.hpp"
#include "core/systolic_diff.hpp"
#include "rle/ops.hpp"
#include "test_util.hpp"
#include "workload/generator.hpp"
#include "workload/rng.hpp"

namespace sysrle {
namespace {

struct Regime {
  pos_t width;
  double density;
  double error_fraction;  // < 0 means: independent rows (dissimilar images)
};

class EngineEquivalence
    : public ::testing::TestWithParam<std::tuple<Regime, std::uint64_t>> {};

TEST_P(EngineEquivalence, AllEnginesAgreeAndBoundsHold) {
  const auto& [regime, seed] = GetParam();
  Rng rng(seed);

  RleRow a, b;
  if (regime.error_fraction >= 0) {
    RowGenParams rp;
    rp.width = regime.width;
    rp.density = regime.density;
    ErrorGenParams ep;
    ep.error_fraction = regime.error_fraction;
    const RowPairSample s = generate_pair(rng, rp, ep);
    a = s.first;
    b = s.second;
  } else {
    a = sysrle::testing::random_row(rng, regime.width, regime.density);
    b = sysrle::testing::random_row(rng, regime.width, regime.density);
  }

  // Ground truth, computed through the uncompressed domain.
  const RleRow expected = sysrle::testing::reference_xor(a, b, regime.width);

  // Engine 1: the systolic machine, with every invariant checker armed.
  SystolicConfig sys_cfg;
  sys_cfg.check_invariants = true;
  const SystolicResult sys = systolic_xor(a, b, sys_cfg);
  EXPECT_EQ(sys.output.canonical(), expected);

  // Engine 2: the broadcast-bus variant.
  const BusResult bus = bus_systolic_xor(a, b);
  EXPECT_EQ(bus.output.canonical(), expected);

  // Engine 3: the sequential merge.
  const SequentialDiffResult seq = sequential_xor(a, b);
  EXPECT_EQ(seq.output.canonical(), expected);

  // Engine 4: the parity sweep.
  EXPECT_EQ(xor_rows(a, b), expected);

  // Engine 5: pixel-parallel through bitmaps.
  EXPECT_EQ(pixel_parallel_xor(a, b, regime.width).output, expected);

  // Engine 6: the word-parallel sequential engine at the host's active
  // dispatch level (canonical by contract, no .canonical() needed).
  EXPECT_EQ(sequential_engine_xor(a, b).output, expected);

  // Section-5 cost structure.
  const DiffCostMeasurement pred = measure_costs(a, b);
  EXPECT_LE(sys.counters.iterations, pred.theorem1_bound());
  EXPECT_LE(bus.counters.iterations, sys.counters.iterations);
  if (regime.error_fraction >= 0) {
    // Canonical inputs: the Observation bound applies to the machine's own
    // (raw) output run count.
    EXPECT_LE(sys.counters.iterations, sys.output.run_count() + 1)
        << "Observation bound violated";
  }
  // The raw outputs of the compressed-domain engines have identical run
  // multisets even before compaction-by-canonicalisation.
  EXPECT_EQ(sys.output.foreground_pixels(), expected.foreground_pixels());
}

std::string regime_name(
    const ::testing::TestParamInfo<std::tuple<Regime, std::uint64_t>>& info) {
  const auto& [r, seed] = info.param;
  std::string s = "w";
  s += std::to_string(r.width);
  s += "_d";
  s += std::to_string(static_cast<int>(r.density * 100));
  s += "_";
  if (r.error_fraction >= 0) {
    s += "e";
    s += std::to_string(static_cast<int>(r.error_fraction * 100));
  } else {
    s += "indep";
  }
  s += "_s";
  s += std::to_string(seed);
  return s;
}

INSTANTIATE_TEST_SUITE_P(
    SimilarImages, EngineEquivalence,
    ::testing::Combine(::testing::Values(Regime{128, 0.30, 0.035},
                                         Regime{512, 0.30, 0.035},
                                         Regime{2048, 0.30, 0.035},
                                         Regime{2048, 0.30, 0.005},
                                         Regime{1024, 0.10, 0.02},
                                         Regime{1024, 0.60, 0.02}),
                       ::testing::Values(1u, 2u, 3u, 4u, 5u)),
    regime_name);

INSTANTIATE_TEST_SUITE_P(
    HeavyErrors, EngineEquivalence,
    ::testing::Combine(::testing::Values(Regime{1024, 0.30, 0.30},
                                         Regime{1024, 0.30, 0.60},
                                         Regime{512, 0.50, 0.45}),
                       ::testing::Values(11u, 12u, 13u)),
    regime_name);

INSTANTIATE_TEST_SUITE_P(
    DissimilarImages, EngineEquivalence,
    ::testing::Combine(::testing::Values(Regime{256, 0.30, -1.0},
                                         Regime{256, 0.70, -1.0},
                                         Regime{64, 0.50, -1.0}),
                       ::testing::Values(21u, 22u, 23u)),
    regime_name);

// --- Figure-5 shape property: iterations track |k1 - k2| for similar
//     images.  Averaged over seeds so the assertion is stable.

TEST(Figure5Shape, IterationsTrackRunCountDifferenceForSimilarImages) {
  RowGenParams rp;
  rp.width = 10000;
  ErrorGenParams ep;
  ep.error_fraction = 0.03;  // well inside the "similar" regime
  double iter_sum = 0, diff_sum = 0, bound_sum = 0;
  const int trials = 20;
  for (int t = 0; t < trials; ++t) {
    Rng rng(9000 + static_cast<std::uint64_t>(t));
    const RowPairSample s = generate_pair(rng, rp, ep);
    const SystolicResult r = systolic_xor(s.first, s.second);
    const std::uint64_t k1 = s.first.run_count();
    const std::uint64_t k2 = s.second.run_count();
    iter_sum += static_cast<double>(r.counters.iterations);
    diff_sum += static_cast<double>(k1 > k2 ? k1 - k2 : k2 - k1);
    bound_sum += static_cast<double>(k1 + k2);
  }
  const double mean_iter = iter_sum / trials;
  const double mean_diff = diff_sum / trials;
  const double mean_bound = bound_sum / trials;
  // Iterations are far below the k1+k2 bound (the paper's headline) ...
  EXPECT_LT(mean_iter, 0.25 * mean_bound);
  // ... and within a small constant band of the run-count difference.
  EXPECT_LE(mean_diff, mean_iter + 1.0);  // diff is (about) a lower bound
  EXPECT_LT(mean_iter, 4.0 * (mean_diff + 5.0));
}

TEST(Stress, MillionPixelRow) {
  // One very large row end to end: 1M pixels, ~25k runs per side.  Verifies
  // the simulator's data structures and bounds at realistic board scale and
  // guards against accidental O(k^2) blowups in the support code.
  Rng rng(31415);
  RowGenParams rp;
  rp.width = 1'000'000;
  ErrorGenParams ep;
  ep.error_fraction = 0.005;
  const RowPairSample s = generate_pair(rng, rp, ep);
  ASSERT_GT(s.first.run_count(), 10000u);

  const SystolicResult r = systolic_xor(s.first, s.second);
  EXPECT_EQ(r.output.canonical(), xor_rows(s.first, s.second));
  EXPECT_LE(r.counters.iterations,
            s.first.run_count() + s.second.run_count());
  EXPECT_LE(r.counters.iterations, r.output.run_count() + 1);  // Observation
  // Similar rows: iterations far below the Theorem-1 bound.
  EXPECT_LT(r.counters.iterations,
            (s.first.run_count() + s.second.run_count()) / 4);
}

TEST(Table1Shape, FixedErrorsGiveSizeIndependentIterations) {
  // Table 1's second regime: 6 error runs of 4 pixels each; the paper reports
  // "the systolic algorithm averages just over 5 iterations regardless of
  // how large the image gets".
  RowGenParams rp;
  for (const pos_t width : {128, 256, 512, 1024, 2048}) {
    rp.width = width;
    double iters = 0;
    const int trials = 15;
    for (int t = 0; t < trials; ++t) {
      Rng rng(7000 + static_cast<std::uint64_t>(width) * 31 +
              static_cast<std::uint64_t>(t));
      const RowPairSample s = generate_pair_fixed_errors(rng, rp, 6, 4);
      iters +=
          static_cast<double>(systolic_xor(s.first, s.second).counters.iterations);
    }
    const double mean_iters = iters / trials;
    EXPECT_LT(mean_iters, 16.0) << "width " << width;
    // Sequential cost grows with size; systolic must beat it clearly by 2048.
    if (width == 2048) {
      double seq_iters = 0;
      for (int t = 0; t < trials; ++t) {
        Rng rng(7700 + static_cast<std::uint64_t>(t));
        const RowPairSample s = generate_pair_fixed_errors(rng, rp, 6, 4);
        seq_iters +=
            static_cast<double>(sequential_xor(s.first, s.second).iterations);
      }
      EXPECT_GT(seq_iters / trials, 5.0 * mean_iters);
    }
  }
}

}  // namespace
}  // namespace sysrle
