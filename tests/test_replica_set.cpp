// Tests for ReplicaSet: rendezvous preference, breaker-gated pick,
// quarantine + probe re-admission, and kill/revive semantics.

#include "service/replica_set.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <mutex>
#include <set>
#include <vector>

#include "workload/generator.hpp"
#include "workload/rng.hpp"

namespace sysrle {
namespace {

ReplicaSetConfig small_config(std::size_t replicas) {
  ReplicaSetConfig cfg;
  cfg.replicas = replicas;
  cfg.service.workers = 1;
  return cfg;
}

ReplicaSet::CompletionFactory null_completions() {
  return [](std::size_t) -> DiffService::Completion { return nullptr; };
}

TEST(ReplicaSet, PreferenceIsAPermutationAndDeterministic) {
  ReplicaSet set(0, small_config(4), null_completions());
  for (std::uint64_t key : {1ull, 99ull, 0xdeadbeefull}) {
    const std::vector<std::size_t> order = set.preference(key);
    ASSERT_EQ(order.size(), 4u);
    EXPECT_EQ(std::set<std::size_t>(order.begin(), order.end()),
              (std::set<std::size_t>{0, 1, 2, 3}));
    EXPECT_EQ(order, set.preference(key)) << "key " << key;
  }
}

TEST(ReplicaSet, PreferenceSpreadsKeysAcrossReplicas) {
  ReplicaSet set(1, small_config(3), null_completions());
  std::set<std::size_t> firsts;
  for (std::uint64_t key = 0; key < 64; ++key)
    firsts.insert(set.preference(key).front());
  // 64 keys over 3 replicas: every replica should lead for some key.
  EXPECT_EQ(firsts.size(), 3u);
}

TEST(ReplicaSet, PickSkipsExcludedAndQuarantinedReplicas) {
  ReplicaSet set(2, small_config(2), null_completions());
  const std::uint64_t key = 7;
  const std::vector<std::size_t> order = set.preference(key);

  // Exclusion: the hedge must land on the other replica.
  auto picked = set.pick(key, 0, order.front());
  ASSERT_TRUE(picked.has_value());
  EXPECT_EQ(*picked, order[1]);
  set.release_probe(*picked);  // pair the pick (no work was sent)

  // Trip the preferred replica's breaker; pick now avoids it.
  for (int i = 0; i < 3; ++i) set.record_failure(order.front(), 0);
  EXPECT_EQ(set.breaker_state(order.front()), BreakerState::kOpen);
  picked = set.pick(key, 1, SIZE_MAX);
  ASSERT_TRUE(picked.has_value());
  EXPECT_EQ(*picked, order[1]);
  set.release_probe(*picked);
}

TEST(ReplicaSet, AllQuarantinedAndProbeReadmission) {
  ReplicaSetConfig cfg = small_config(2);
  cfg.breaker.failure_threshold = 2;
  cfg.breaker.open_duration = 1000;  // µs on the caller-supplied clock
  ReplicaSet set(3, cfg, null_completions());

  for (std::size_t r = 0; r < 2; ++r)
    for (int i = 0; i < 2; ++i) set.record_failure(r, 0);
  EXPECT_TRUE(set.all_quarantined(10));
  EXPECT_FALSE(set.pick(5, 10).has_value());

  // Past the open window the set is probeable again, not "down".
  EXPECT_FALSE(set.all_quarantined(2000));
  const auto probe = set.pick(5, 2000);
  ASSERT_TRUE(probe.has_value());
  EXPECT_EQ(set.breaker_state(*probe), BreakerState::kHalfOpen);
  set.record_success(*probe, 2001);
  EXPECT_EQ(set.breaker_state(*probe), BreakerState::kClosed);
}

TEST(ReplicaSet, KillShedsShutdownAndReviveRestoresService) {
  std::mutex mu;
  std::vector<ServiceResponse> responses;
  auto factory = [&](std::size_t) -> DiffService::Completion {
    return [&](ServiceResponse r) {
      std::lock_guard<std::mutex> lk(mu);
      responses.push_back(std::move(r));
    };
  };
  ReplicaSet set(4, small_config(1), factory);

  Rng rng(21);
  RowGenParams p;
  p.width = 128;
  ServiceRequest req;
  req.id = 1;
  req.reference = generate_image(rng, 4, p);
  req.scan = req.reference;

  set.kill(0);
  EXPECT_TRUE(set.killed(0));
  auto reason = set.replica(0)->try_submit(req);
  ASSERT_TRUE(reason.has_value());
  EXPECT_EQ(*reason, RejectReason::kShutdown);

  set.revive(0);
  EXPECT_FALSE(set.killed(0));
  req.id = 2;
  EXPECT_FALSE(set.replica(0)->try_submit(std::move(req)).has_value());
  set.drain();

  std::lock_guard<std::mutex> lk(mu);
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].id, 2u);
  EXPECT_EQ(responses[0].status, ServiceResponse::Status::kCompleted);

  const ServiceStats st = set.aggregate_stats();
  EXPECT_EQ(st.completed, 1u);
}

}  // namespace
}  // namespace sysrle
