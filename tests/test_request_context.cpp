// Tests for RequestContext propagation: the thread-local scope (install,
// restore, nesting, per-thread isolation), span annotation, and the
// owned-name span variant for dynamically composed labels.

#include "telemetry/request_context.hpp"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "telemetry/span.hpp"
#include "telemetry/telemetry.hpp"

namespace sysrle {
namespace {

RequestContext make_ctx(std::uint64_t rid, std::uint32_t attempt = 0,
                        std::int32_t shard = -1, std::int32_t replica = -1) {
  RequestContext ctx;
  ctx.active = true;
  ctx.request_id = rid;
  ctx.attempt = attempt;
  ctx.shard = shard;
  ctx.replica = replica;
  return ctx;
}

class RequestContextTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_telemetry_enabled(false);
    reset_telemetry();
  }
  void TearDown() override {
    set_telemetry_enabled(false);
    reset_telemetry();
  }
};

TEST(RequestContext, InactiveByDefault) {
  EXPECT_FALSE(current_request_context().active);
  EXPECT_FALSE(RequestContext{}.active);
}

TEST(RequestContext, ScopeInstallsAndRestores) {
  const RequestContext ctx = make_ctx(42, 1, 2, 3);
  {
    RequestContextScope scope(ctx);
    EXPECT_EQ(current_request_context(), ctx);
    EXPECT_EQ(current_request_context().request_id, 42u);
    EXPECT_EQ(current_request_context().shard, 2);
  }
  EXPECT_FALSE(current_request_context().active);
}

TEST(RequestContext, ScopesNestAndUnwindInOrder) {
  // Request id 0 is a valid id — the explicit `active` flag, not a sentinel
  // id, distinguishes "no context".
  const RequestContext outer = make_ctx(0);
  const RequestContext inner = make_ctx(7, 2);
  RequestContextScope outer_scope(outer);
  EXPECT_EQ(current_request_context(), outer);
  {
    RequestContextScope inner_scope(inner);
    EXPECT_EQ(current_request_context(), inner);
  }
  EXPECT_EQ(current_request_context(), outer);
  EXPECT_TRUE(current_request_context().active);
  EXPECT_EQ(current_request_context().request_id, 0u);
}

TEST(RequestContext, ContextIsPerThread) {
  RequestContextScope scope(make_ctx(11));
  RequestContext seen_in_thread = make_ctx(99);
  std::thread([&seen_in_thread] {
    seen_in_thread = current_request_context();
  }).join();
  EXPECT_FALSE(seen_in_thread.active)
      << "another thread must not inherit this thread's context";
  EXPECT_EQ(current_request_context().request_id, 11u);
}

// ---------------------------------------------------------- span annotation

TEST_F(RequestContextTest, SpansRecordTheActiveContext) {
  set_telemetry_enabled(true);
  {
    RequestContextScope scope(make_ctx(1731, 1, 0, 1));
    TELEMETRY_SPAN("annotated");
  }
  {
    TELEMETRY_SPAN("unannotated");
  }
  const std::vector<SpanEvent> events = global_tracer().snapshot();
  ASSERT_EQ(events.size(), 2u);
  const SpanEvent& annotated =
      std::string(events[0].label()) == "annotated" ? events[0] : events[1];
  const SpanEvent& unannotated =
      std::string(events[0].label()) == "annotated" ? events[1] : events[0];
  EXPECT_TRUE(annotated.ctx.active);
  EXPECT_EQ(annotated.ctx.request_id, 1731u);
  EXPECT_EQ(annotated.ctx.attempt, 1u);
  EXPECT_EQ(annotated.ctx.shard, 0);
  EXPECT_EQ(annotated.ctx.replica, 1);
  EXPECT_FALSE(unannotated.ctx.active);
}

// -------------------------------------------------------------- owned names

TEST_F(RequestContextTest, OwnedNameSpanSurvivesTheSourceString) {
  set_telemetry_enabled(true);
  {
    std::string label = "service.request.s1.r0";
    TelemetrySpan span(label);
    // Mutate and shrink the source before the span even closes: the event
    // must carry its own copy.
    label.assign(200, 'x');
    label.clear();
    label.shrink_to_fit();
  }
  const std::vector<SpanEvent> events = global_tracer().snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_TRUE(events[0].name_owned);
  EXPECT_STREQ(events[0].label(), "service.request.s1.r0");
}

TEST_F(RequestContextTest, OwnedNameTruncatesAtCapacity) {
  set_telemetry_enabled(true);
  const std::string long_name(kSpanNameCapacity + 20, 'n');
  { TelemetrySpan span(long_name); }
  const std::vector<SpanEvent> events = global_tracer().snapshot();
  ASSERT_EQ(events.size(), 1u);
  const std::string label = events[0].label();
  EXPECT_EQ(label.size(), kSpanNameCapacity - 1);
  EXPECT_EQ(label, long_name.substr(0, kSpanNameCapacity - 1));
}

TEST(SpanTracer, RecordOwnedCopiesIntoTheEvent) {
  SpanTracer t;
  {
    std::string name = "dynamic.label";
    t.record_owned(name, "cat", 10, 5);
    name.assign(100, 'z');
  }
  const std::vector<SpanEvent> events = t.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_TRUE(events[0].name_owned);
  EXPECT_STREQ(events[0].label(), "dynamic.label");
  EXPECT_STREQ(events[0].category, "cat");
  EXPECT_EQ(events[0].ts_us, 10u);
  EXPECT_EQ(events[0].dur_us, 5u);
}

TEST(SpanTracer, LiteralEventsAreNotMarkedOwned) {
  SpanTracer t;
  t.record("literal", "cat", 0, 1);
  const std::vector<SpanEvent> events = t.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_FALSE(events[0].name_owned);
  EXPECT_STREQ(events[0].label(), "literal");
}

}  // namespace
}  // namespace sysrle
