// Tests for the content-addressed result cache: hit/miss accounting, LRU
// eviction order, byte-budget churn, collision fallback to a full operand
// compare, and a TSan hammer (CI runs this binary under ThreadSanitizer).

#include "store/result_cache.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <thread>
#include <vector>

#include "workload/generator.hpp"
#include "workload/rng.hpp"

namespace sysrle {
namespace {

RleImage make_image(std::uint64_t seed, pos_t rows = 4, pos_t width = 512) {
  Rng rng(seed);
  RowGenParams p;
  p.width = width;
  return generate_image(rng, rows, p);
}

std::shared_ptr<const RleImage> shared_image(std::uint64_t seed) {
  return std::make_shared<const RleImage>(make_image(seed));
}

ResultKey key_of(std::uint64_t a, std::uint64_t b) {
  ResultKey k;
  k.fp_a = a;
  k.fp_b = b;
  return k;
}

TEST(ResultCache, MissThenHit) {
  ResultCache cache;
  const auto a = shared_image(1);
  const auto b = shared_image(2);
  const ResultKey key = key_of(10, 20);
  EXPECT_EQ(cache.lookup(key, *a, *b), nullptr);

  CachedDiff result;
  result.diff = make_image(3);
  result.rows_processed = 4;
  cache.insert(key, a, b, result);

  const std::shared_ptr<const CachedDiff> hit = cache.lookup(key, *a, *b);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->diff, result.diff);
  EXPECT_EQ(hit->rows_processed, 4u);

  const CacheStats s = cache.stats();
  EXPECT_EQ(s.lookups, 2u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_TRUE(s.accounted());
}

// Key equality is not enough: a key hit whose stored operands are different
// images is a fingerprint collision and must fall back to a full compare,
// then degrade to a counted miss — never a wrong answer.
TEST(ResultCache, KeyCollisionFallsBackToFullCompare) {
  ResultCache cache;
  const auto a = shared_image(1);
  const auto b = shared_image(2);
  const ResultKey key = key_of(10, 20);
  cache.insert(key, a, b, CachedDiff{make_image(3), 4, 0});

  // Same operand *content* through different allocations: the pointer fast
  // path fails, the full compare succeeds — still a hit.
  const RleImage a_copy = make_image(1);
  const RleImage b_copy = make_image(2);
  EXPECT_NE(cache.lookup(key, a_copy, b_copy), nullptr);

  // Same key, different pixels: collision, counted, served as a miss.
  const RleImage other = make_image(99);
  EXPECT_EQ(cache.lookup(key, other, *b), nullptr);
  const CacheStats s = cache.stats();
  EXPECT_EQ(s.collisions, 1u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_TRUE(s.accounted());
}

TEST(ResultCache, EvictsLeastRecentlyUsedFirst) {
  const CachedDiff payload{make_image(50, 8, 2048), 8, 0};
  const std::size_t each = ResultCache::cost_of(payload.diff);
  CacheConfig cfg;
  cfg.capacity_bytes = 2 * each + each / 2;  // room for two, not three
  ResultCache cache(cfg);
  const auto a = shared_image(1);
  const auto b = shared_image(2);
  cache.insert(key_of(1, 1), a, b, payload);
  cache.insert(key_of(2, 2), a, b, payload);
  // Touch key 1 so key 2 is the LRU tail.
  EXPECT_NE(cache.lookup(key_of(1, 1), *a, *b), nullptr);
  cache.insert(key_of(3, 3), a, b, payload);

  EXPECT_NE(cache.lookup(key_of(1, 1), *a, *b), nullptr);
  EXPECT_EQ(cache.lookup(key_of(2, 2), *a, *b), nullptr);  // evicted
  EXPECT_NE(cache.lookup(key_of(3, 3), *a, *b), nullptr);
  const CacheStats s = cache.stats();
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_EQ(s.resident, 2u);
  EXPECT_TRUE(s.accounted());
}

TEST(ResultCache, ReInsertKeepsIncumbentAndRefreshesRecency) {
  ResultCache cache;
  const auto a = shared_image(1);
  const auto b = shared_image(2);
  const ResultKey key = key_of(10, 20);
  cache.insert(key, a, b, CachedDiff{make_image(3), 4, 0});
  cache.insert(key, a, b, CachedDiff{make_image(4), 4, 0});
  const CacheStats s = cache.stats();
  EXPECT_EQ(s.insertions, 1u);  // the duplicate did not double-insert
  EXPECT_EQ(s.resident, 1u);
  const std::shared_ptr<const CachedDiff> hit = cache.lookup(key, *a, *b);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->diff, make_image(3));  // incumbent won
}

TEST(ResultCache, ByteBudgetHoldsUnderChurn) {
  CacheConfig cfg;
  cfg.capacity_bytes = 32 * 1024;
  ResultCache cache(cfg);
  const auto a = shared_image(1);
  const auto b = shared_image(2);
  for (std::uint64_t i = 0; i < 200; ++i) {
    cache.insert(key_of(i, i + 1), a, b,
                 CachedDiff{make_image(300 + i, 4, 1024), 4, 0});
    (void)cache.lookup(key_of(i / 2, i / 2 + 1), *a, *b);
    const CacheStats s = cache.stats();
    ASSERT_LE(s.resident_bytes, cfg.capacity_bytes);
    ASSERT_TRUE(s.accounted());
  }
  EXPECT_GT(cache.stats().evictions, 0u);
}

// An oversized result (larger than the whole budget) must not wedge the
// cache: it is either refused or immediately evicted, and accounting holds.
TEST(ResultCache, OversizedResultDoesNotWedge) {
  CacheConfig cfg;
  cfg.capacity_bytes = 1024;
  ResultCache cache(cfg);
  const auto a = shared_image(1);
  const auto b = shared_image(2);
  cache.insert(key_of(1, 2), a, b, CachedDiff{make_image(5, 32, 4096), 32, 0});
  const CacheStats s = cache.stats();
  EXPECT_TRUE(s.accounted());
  // Whatever the policy chose, the budget is respected afterwards.
  EXPECT_LE(s.resident_bytes,
            std::max(cfg.capacity_bytes,
                     ResultCache::cost_of(make_image(5, 32, 4096))));
}

// TSan hammer: concurrent lookups and inserts over a small keyspace with a
// tiny budget, so hits, misses, evictions, and recency splices all race.
TEST(ResultCache, ConcurrentLookupInsertHammer) {
  CacheConfig cfg;
  cfg.capacity_bytes = 16 * 1024;
  ResultCache cache(cfg);
  const auto a = shared_image(1);
  const auto b = shared_image(2);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t)
    threads.emplace_back([&cache, &a, &b, t] {
      for (std::uint64_t i = 0; i < 200; ++i) {
        const std::uint64_t k = (static_cast<std::uint64_t>(t) * 7 + i) % 16;
        const std::shared_ptr<const CachedDiff> hit =
            cache.lookup(key_of(k, k + 1), *a, *b);
        if (hit) {
          ASSERT_GT(hit->diff.height(), 0);
        } else {
          cache.insert(key_of(k, k + 1), a, b,
                       CachedDiff{make_image(500 + k, 4, 1024), 4, 0});
        }
      }
    });
  for (std::thread& th : threads) th.join();
  const CacheStats s = cache.stats();
  EXPECT_TRUE(s.accounted());
  EXPECT_GT(s.hits, 0u);
  EXPECT_LE(s.resident_bytes, cfg.capacity_bytes);
}

}  // namespace
}  // namespace sysrle
