// Tests for the token-bucket retry budget and jittered exponential backoff.

#include "service/retry_budget.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/assert.hpp"
#include "telemetry/telemetry.hpp"

namespace sysrle {
namespace {

TEST(RetryBudget, SpendsDownToEmptyThenRefuses) {
  RetryBudgetConfig cfg;
  cfg.initial_tokens = 3.0;
  cfg.max_tokens = 3.0;
  RetryBudget budget(cfg);
  EXPECT_TRUE(budget.try_spend());
  EXPECT_TRUE(budget.try_spend());
  EXPECT_TRUE(budget.try_spend());
  EXPECT_FALSE(budget.try_spend());
  EXPECT_EQ(budget.exhausted(), 1u);
  EXPECT_DOUBLE_EQ(budget.tokens(), 0.0);
}

TEST(RetryBudget, SuccessesEarnFractionalTokens) {
  RetryBudgetConfig cfg;
  cfg.initial_tokens = 0.0;
  cfg.max_tokens = 2.0;
  cfg.tokens_per_success = 0.5;
  RetryBudget budget(cfg);
  EXPECT_FALSE(budget.try_spend());
  budget.record_success();
  EXPECT_FALSE(budget.try_spend());  // 0.5 < 1.0
  budget.record_success();
  EXPECT_TRUE(budget.try_spend());  // exactly 1.0 covers the cost
  EXPECT_FALSE(budget.try_spend());
}

TEST(RetryBudget, TokensAreCappedAtMax) {
  RetryBudgetConfig cfg;
  cfg.initial_tokens = 1.0;
  cfg.max_tokens = 2.0;
  cfg.tokens_per_success = 1.0;
  RetryBudget budget(cfg);
  for (int i = 0; i < 10; ++i) budget.record_success();
  EXPECT_DOUBLE_EQ(budget.tokens(), 2.0);
  EXPECT_TRUE(budget.try_spend());
  EXPECT_TRUE(budget.try_spend());
  EXPECT_FALSE(budget.try_spend());
}

TEST(RetryBudget, ExhaustionIsCountedInTelemetry) {
  reset_telemetry();
  set_telemetry_enabled(true);
  RetryBudgetConfig cfg;
  cfg.initial_tokens = 0.0;
  RetryBudget budget(cfg);
  EXPECT_FALSE(budget.try_spend());
  EXPECT_FALSE(budget.try_spend());
  EXPECT_EQ(global_metrics().snapshot().counter(
                "service.retry_budget_exhausted_total"),
            2u);
  set_telemetry_enabled(false);
  reset_telemetry();
}

TEST(RetryBudget, RejectsNonsenseConfig) {
  RetryBudgetConfig bad;
  bad.cost_per_retry = 0.0;
  EXPECT_THROW(RetryBudget{bad}, contract_error);
  RetryBudgetConfig negative;
  negative.initial_tokens = -1.0;
  EXPECT_THROW(RetryBudget{negative}, contract_error);
}

TEST(RetryBudget, ConcurrentSpendersNeverOverdraw) {
  RetryBudgetConfig cfg;
  cfg.initial_tokens = 64.0;
  cfg.max_tokens = 64.0;
  RetryBudget budget(cfg);
  std::atomic<int> granted{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 32; ++i)
        if (budget.try_spend()) granted.fetch_add(1);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(granted.load(), 64);
  EXPECT_FALSE(budget.try_spend());
}

TEST(Backoff, GrowsExponentiallyAndCaps) {
  BackoffPolicy p;
  p.base_us = 100;
  p.multiplier = 2.0;
  p.cap_us = 500;
  p.jitter = 0.0;  // deterministic: delay == min(base * 2^i, cap)
  Rng rng(1);
  EXPECT_EQ(backoff_delay_us(p, 0, rng), 100u);
  EXPECT_EQ(backoff_delay_us(p, 1, rng), 200u);
  EXPECT_EQ(backoff_delay_us(p, 2, rng), 400u);
  EXPECT_EQ(backoff_delay_us(p, 3, rng), 500u);  // capped
  EXPECT_EQ(backoff_delay_us(p, 10, rng), 500u);
}

TEST(Backoff, JitterStaysInsideTheConfiguredBand) {
  BackoffPolicy p;
  p.base_us = 1000;
  p.multiplier = 1.0;
  p.cap_us = 1000;
  p.jitter = 0.5;  // delay in [500, 1000)
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t d = backoff_delay_us(p, 0, rng);
    EXPECT_GE(d, 500u);
    EXPECT_LT(d, 1000u);
  }
}

TEST(Backoff, EqualSeedsGiveByteIdenticalDelays) {
  BackoffPolicy p;
  Rng a(12345), b(12345), c(54321);
  std::vector<std::uint64_t> da, db, dc;
  for (int i = 0; i < 32; ++i) {
    da.push_back(backoff_delay_us(p, i % 6, a));
    db.push_back(backoff_delay_us(p, i % 6, b));
    dc.push_back(backoff_delay_us(p, i % 6, c));
  }
  EXPECT_EQ(da, db);
  EXPECT_NE(da, dc);
}

TEST(Backoff, RejectsBadArguments) {
  BackoffPolicy p;
  Rng rng(1);
  EXPECT_THROW(backoff_delay_us(p, -1, rng), contract_error);
  p.jitter = 1.5;
  EXPECT_THROW(backoff_delay_us(p, 0, rng), contract_error);
}

}  // namespace
}  // namespace sysrle
