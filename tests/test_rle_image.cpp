// Tests for the RLE image container.

#include "rle/rle_image.hpp"

#include <gtest/gtest.h>

#include "common/assert.hpp"

namespace sysrle {
namespace {

TEST(RleImage, ConstructsEmpty) {
  const RleImage img(100, 4);
  EXPECT_EQ(img.width(), 100);
  EXPECT_EQ(img.height(), 4);
  for (pos_t y = 0; y < 4; ++y) EXPECT_TRUE(img.row(y).empty());
}

TEST(RleImage, SetRowAndReadBack) {
  RleImage img(50, 2);
  img.set_row(1, RleRow{{10, 5}});
  EXPECT_TRUE(img.row(0).empty());
  EXPECT_EQ(img.row(1), (RleRow{{10, 5}}));
}

TEST(RleImage, SetRowRejectsTooWideRow) {
  RleImage img(10, 1);
  EXPECT_THROW(img.set_row(0, RleRow{{8, 4}}), contract_error);
}

TEST(RleImage, RowIndexBoundsChecked) {
  RleImage img(10, 2);
  EXPECT_THROW(img.row(2), contract_error);
  EXPECT_THROW(img.row(-1), contract_error);
  EXPECT_THROW(img.set_row(5, RleRow{}), contract_error);
}

TEST(RleImage, ConstructFromRowsValidatesWidth) {
  std::vector<RleRow> rows{RleRow{{0, 5}}, RleRow{{6, 4}}};
  const RleImage img(10, rows);
  EXPECT_EQ(img.height(), 2);
  std::vector<RleRow> bad{RleRow{{6, 6}}};
  EXPECT_THROW(RleImage(10, bad), contract_error);
}

TEST(RleImage, StatsAggregatesRuns) {
  RleImage img(100, 3);
  img.set_row(0, RleRow{{0, 10}, {20, 10}});
  img.set_row(1, RleRow{{5, 30}});
  // row 2 empty
  const RleImageStats s = img.stats();
  EXPECT_EQ(s.total_runs, 3u);
  EXPECT_EQ(s.max_runs_per_row, 2u);
  EXPECT_EQ(s.foreground_pixels, 50);
  EXPECT_DOUBLE_EQ(s.density, 50.0 / 300.0);
}

TEST(RleImage, StatsOnZeroAreaImage) {
  const RleImage img(0, 0);
  const RleImageStats s = img.stats();
  EXPECT_EQ(s.total_runs, 0u);
  EXPECT_DOUBLE_EQ(s.density, 0.0);
}

TEST(RleImage, EqualityAndToString) {
  RleImage a(20, 2);
  a.set_row(0, RleRow{{1, 2}});
  RleImage b = a;
  EXPECT_EQ(a, b);
  b.set_row(1, RleRow{{3, 3}});
  EXPECT_NE(a, b);
  EXPECT_EQ(a.to_string(), "(1,2)\n");
}

}  // namespace
}  // namespace sysrle
