// Tests for the sequential parity-sweep set operations on RLE rows,
// cross-checked against uncompressed string arithmetic.

#include "rle/ops.hpp"

#include <gtest/gtest.h>

#include "rle/encode.hpp"
#include "test_util.hpp"
#include "workload/rng.hpp"

namespace sysrle {
namespace {

using RunT = ::sysrle::Run;  // avoid collision with testing::Test::Run

using sysrle::testing::random_row;

RleRow row_of(const std::string& bits) { return encode_bitstring(bits); }

TEST(RleOps, XorPaperFigure1) {
  // Figure 1 of the paper, transcribed exactly.
  const RleRow img1{{10, 3}, {16, 2}, {23, 2}, {27, 3}};
  const RleRow img2{{3, 4}, {8, 5}, {15, 5}, {23, 2}, {27, 4}};
  const RleRow expected{{3, 4}, {8, 2}, {15, 1}, {18, 2}, {30, 1}};
  EXPECT_EQ(xor_rows(img1, img2), expected);
  EXPECT_EQ(xor_rows(img2, img1), expected);  // symmetric
}

TEST(RleOps, XorBasics) {
  EXPECT_EQ(xor_rows(row_of("1100"), row_of("1010")), row_of("0110"));
  EXPECT_TRUE(xor_rows(row_of("1111"), row_of("1111")).empty());
  EXPECT_EQ(xor_rows(row_of("1111"), RleRow{}), row_of("1111"));
  EXPECT_TRUE(xor_rows(RleRow{}, RleRow{}).empty());
}

TEST(RleOps, AndOrSubtractBasics) {
  EXPECT_EQ(and_rows(row_of("1100"), row_of("1010")), row_of("1000"));
  EXPECT_EQ(or_rows(row_of("1100"), row_of("1010")), row_of("1110"));
  EXPECT_EQ(subtract_rows(row_of("1100"), row_of("1010")), row_of("0100"));
}

TEST(RleOps, ComplementWithinWidth) {
  EXPECT_EQ(complement_row(row_of("0110"), 4), row_of("1001"));
  EXPECT_EQ(complement_row(RleRow{}, 3), row_of("111"));
  EXPECT_TRUE(complement_row(row_of("111"), 3).empty());
}

TEST(RleOps, ResultsAreCanonical) {
  // Adjacent fragments in the XOR must merge into one run.
  const RleRow a{{0, 4}};           // [0,3]
  const RleRow b{{4, 4}};           // [4,7]
  EXPECT_EQ(xor_rows(a, b), (RleRow{{0, 8}}));
  EXPECT_TRUE(xor_rows(a, b).is_canonical());
}

TEST(RleOps, IntersectionAndHamming) {
  const RleRow a = row_of("11011000");
  const RleRow b = row_of("01010110");
  EXPECT_EQ(intersection_pixels(a, b), 2);
  EXPECT_EQ(hamming_distance(a, b), 4);
  EXPECT_EQ(hamming_distance(a, a), 0);
}

TEST(RleOps, RandomAgainstStringArithmetic) {
  Rng rng(7);
  for (int trial = 0; trial < 60; ++trial) {
    const pos_t width = rng.uniform(1, 200);
    const double da = rng.uniform01();
    const double db = rng.uniform01();
    const RleRow a = random_row(rng, width, da);
    const RleRow b = random_row(rng, width, db);
    const std::string sa = decode_bitstring(a, width);
    const std::string sb = decode_bitstring(b, width);
    auto expect_bits = [&](const RleRow& got, auto op, const char* name) {
      std::string want(sa.size(), '0');
      for (std::size_t i = 0; i < want.size(); ++i)
        want[i] = op(sa[i] == '1', sb[i] == '1') ? '1' : '0';
      EXPECT_EQ(decode_bitstring(got, width), want) << name << " trial "
                                                    << trial;
    };
    expect_bits(xor_rows(a, b), [](bool x, bool y) { return x != y; }, "xor");
    expect_bits(and_rows(a, b), [](bool x, bool y) { return x && y; }, "and");
    expect_bits(or_rows(a, b), [](bool x, bool y) { return x || y; }, "or");
    expect_bits(subtract_rows(a, b), [](bool x, bool y) { return x && !y; },
                "subtract");
  }
}

TEST(RleOps, XorRunMultisetFoldsOverlaps) {
  // Two copies of a run cancel; three copies survive.
  EXPECT_TRUE(xor_run_multiset({{5, 3}, {5, 3}}).empty());
  EXPECT_EQ(xor_run_multiset({{5, 3}, {5, 3}, {5, 3}}), (RleRow{{5, 3}}));
}

TEST(RleOps, XorRunMultisetMatchesPairwiseXor) {
  Rng rng(19);
  for (int trial = 0; trial < 40; ++trial) {
    const pos_t width = 120;
    std::vector<RunT> all;
    RleRow acc;
    const int groups = static_cast<int>(rng.uniform(0, 5));
    for (int g = 0; g < groups; ++g) {
      const RleRow row = random_row(rng, width, 0.3);
      for (const RunT& r : row) all.push_back(r);
      acc = xor_rows(acc, row);
    }
    EXPECT_EQ(xor_run_multiset(all), acc.canonical());
  }
}

TEST(RleOps, XorRunMultisetOfSingleRowIsIdentity) {
  // Corollary 3.1: the XOR of a row's runs is the row itself.
  const RleRow row{{2, 3}, {7, 4}, {20, 1}};
  std::vector<RunT> runs(row.runs());
  EXPECT_EQ(xor_run_multiset(runs), row);
}

}  // namespace
}  // namespace sysrle
