// Unit tests for RleRow invariants and operations.

#include "rle/rle_row.hpp"

#include <gtest/gtest.h>

#include "common/assert.hpp"

namespace sysrle {
namespace {

TEST(RleRow, DefaultIsEmpty) {
  const RleRow row;
  EXPECT_TRUE(row.empty());
  EXPECT_EQ(row.run_count(), 0u);
  EXPECT_EQ(row.foreground_pixels(), 0);
}

TEST(RleRow, ConstructsFromOrderedRuns) {
  const RleRow row{{10, 3}, {16, 2}, {23, 2}, {27, 3}};  // paper Figure 1
  EXPECT_EQ(row.run_count(), 4u);
  EXPECT_EQ(row.foreground_pixels(), 10);
  EXPECT_EQ(row.first_pixel(), 10);
  EXPECT_EQ(row.last_pixel(), 29);
}

TEST(RleRow, FromPairsMatchesInitializerList) {
  const RleRow a = RleRow::from_pairs({{3, 4}, {8, 5}});
  const RleRow b{{3, 4}, {8, 5}};
  EXPECT_EQ(a, b);
}

TEST(RleRow, RejectsOverlappingRuns) {
  EXPECT_THROW((RleRow{{10, 5}, {12, 3}}), contract_error);
}

TEST(RleRow, RejectsOutOfOrderRuns) {
  EXPECT_THROW((RleRow{{20, 2}, {10, 2}}), contract_error);
}

TEST(RleRow, RejectsNonPositiveLength) {
  EXPECT_THROW((RleRow{{10, 0}}), contract_error);
  EXPECT_THROW((RleRow{{10, -3}}), contract_error);
}

TEST(RleRow, RejectsNegativeStart) {
  EXPECT_THROW((RleRow{{-1, 3}}), contract_error);
}

TEST(RleRow, AllowsAdjacentRuns) {
  // The paper permits adjacent (touching) runs in inputs and outputs.
  const RleRow row{{10, 5}, {15, 2}};
  EXPECT_EQ(row.run_count(), 2u);
  EXPECT_FALSE(row.is_canonical());
}

TEST(RleRow, PushBackEnforcesOrder) {
  RleRow row;
  row.push_back({5, 3});
  EXPECT_THROW(row.push_back({6, 2}), contract_error);
  row.push_back({9, 2});
  EXPECT_EQ(row.run_count(), 2u);
}

TEST(RleRow, CanonicalizeMergesAdjacentRuns) {
  RleRow row{{0, 5}, {5, 3}, {8, 2}, {12, 4}};
  const std::size_t merges = row.canonicalize();
  EXPECT_EQ(merges, 2u);
  EXPECT_EQ(row, (RleRow{{0, 10}, {12, 4}}));
  EXPECT_TRUE(row.is_canonical());
}

TEST(RleRow, CanonicalizeOnCanonicalRowIsNoop) {
  RleRow row{{0, 5}, {7, 3}};
  EXPECT_EQ(row.canonicalize(), 0u);
  EXPECT_EQ(row, (RleRow{{0, 5}, {7, 3}}));
}

TEST(RleRow, CanonicalReturnsMergedCopy) {
  const RleRow row{{0, 5}, {5, 5}};
  const RleRow merged = row.canonical();
  EXPECT_EQ(merged, (RleRow{{0, 10}}));
  EXPECT_EQ(row.run_count(), 2u);  // original untouched
}

TEST(RleRow, FitsWidthChecksLastPixel) {
  const RleRow row{{10, 5}};  // last pixel 14
  EXPECT_TRUE(row.fits_width(15));
  EXPECT_FALSE(row.fits_width(14));
  EXPECT_TRUE(RleRow{}.fits_width(0));
}

TEST(RleRow, ToStringMatchesPaperFigures) {
  const RleRow row{{3, 4}, {8, 5}};
  EXPECT_EQ(row.to_string(), "(3,4) (8,5)");
  EXPECT_EQ(RleRow{}.to_string(), "");
}

TEST(RleRow, FirstLastPixelRequireNonEmpty) {
  const RleRow row;
  EXPECT_THROW(row.first_pixel(), contract_error);
  EXPECT_THROW(row.last_pixel(), contract_error);
}

}  // namespace
}  // namespace sysrle
