// Tests for compression analytics.

#include "rle/rle_stats.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "rle/encode.hpp"
#include "rle/serialize.hpp"
#include "workload/generator.hpp"
#include "workload/rng.hpp"

namespace sysrle {
namespace {

TEST(RleStats, EmptyImage) {
  const RleImage img(80, 4);
  const CompressionStats s = compression_stats(img);
  EXPECT_EQ(s.bitmap_bytes, 40u);  // 10 bytes x 4 rows
  EXPECT_EQ(s.runs, 0u);
  EXPECT_GT(s.rle_bytes, 0u);  // header + per-row counts
  EXPECT_GT(s.ratio(), 0.0);
}

TEST(RleStats, RleBytesMatchBinaryEncodingExactly) {
  Rng rng(71);
  RowGenParams p;
  p.width = 500;
  const RleImage img = generate_image(rng, 8, p);
  const CompressionStats s = compression_stats(img);
  std::stringstream ss;
  write_rle(ss, img, RleFormat::kBinary);
  EXPECT_EQ(s.rle_bytes, ss.str().size());
}

TEST(RleStats, SparseImageCompressesWell) {
  RleImage img(8000, 10);
  for (pos_t y = 0; y < 10; ++y) img.set_row(y, RleRow{{100, 50}});
  const CompressionStats s = compression_stats(img);
  EXPECT_GT(s.ratio(), 10.0);  // 1000 B/row bitmap vs 24 B/row RLE
}

TEST(RleStats, DenseFragmentedImageCompressesPoorly) {
  // Alternating single pixels: RLE is much worse than the bitmap.
  std::string bits;
  for (int i = 0; i < 512; ++i) bits += (i % 2) ? '1' : '0';
  RleImage img(512, 1);
  img.set_row(0, encode_bitstring(bits));
  const CompressionStats s = compression_stats(img);
  EXPECT_LT(s.ratio(), 1.0);
}

TEST(RleStats, HistogramBucketsAndMoments) {
  RleImage img(100, 2);
  img.set_row(0, RleRow{{0, 1}, {5, 2}, {10, 4}});
  img.set_row(1, RleRow{{0, 16}});
  const RunLengthHistogram h = run_length_histogram(img);
  EXPECT_EQ(h.total_runs, 4u);
  EXPECT_EQ(h.min_length, 1);
  EXPECT_EQ(h.max_length, 16);
  EXPECT_DOUBLE_EQ(h.mean_length, (1 + 2 + 4 + 16) / 4.0);
  EXPECT_EQ(h.buckets[0], 1u);  // length 1
  EXPECT_EQ(h.buckets[1], 1u);  // length 2
  EXPECT_EQ(h.buckets[2], 1u);  // length 3-4
  EXPECT_EQ(h.buckets[4], 1u);  // length 9-16
}

TEST(RleStats, HistogramOfEmptyImage) {
  const RunLengthHistogram h = run_length_histogram(RleImage(10, 2));
  EXPECT_EQ(h.total_runs, 0u);
  EXPECT_DOUBLE_EQ(h.mean_length, 0.0);
}

TEST(RleStats, ToStringMentionsKeyNumbers) {
  RleImage img(100, 1);
  img.set_row(0, RleRow{{0, 8}});
  EXPECT_NE(compression_stats(img).to_string().find("ratio"),
            std::string::npos);
  const std::string hist = run_length_histogram(img).to_string();
  EXPECT_NE(hist.find("runs 1"), std::string::npos);
  EXPECT_NE(hist.find("#"), std::string::npos);
}

TEST(RleStats, PaperWorkloadCompressesAboutFortyToOne) {
  // 10,000-px rows at 30% density with ~250 runs: bitmap 1250 B vs
  // RLE ~4 kB... actually RLE is ~16 B/run here, so ratio < 1!  The paper's
  // PCB artwork has far longer runs; verify the trend: longer runs -> better
  // ratio.
  Rng rng(72);
  RowGenParams fine;
  fine.width = 10000;
  fine.min_run_length = 4;
  fine.max_run_length = 20;
  RowGenParams coarse = fine;
  coarse.min_run_length = 400;
  coarse.max_run_length = 2000;
  RleImage img_fine(fine.width, 1), img_coarse(fine.width, 1);
  img_fine.set_row(0, generate_row(rng, fine));
  img_coarse.set_row(0, generate_row(rng, coarse));
  EXPECT_GT(compression_stats(img_coarse).ratio(),
            compression_stats(img_fine).ratio());
}

}  // namespace
}  // namespace sysrle
