// Tests for the deterministic PRNG.

#include "workload/rng.hpp"

#include <gtest/gtest.h>

#include "common/assert.hpp"

namespace sysrle {
namespace {

TEST(Rng, DeterministicForEqualSeeds) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformStaysInRangeAndHitsEndpoints) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.uniform(-3, 4);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 4);
    saw_lo |= v == -3;
    saw_hi |= v == 4;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformSingletonRange) {
  Rng rng(9);
  EXPECT_EQ(rng.uniform(5, 5), 5);
}

TEST(Rng, UniformRejectsEmptyRange) {
  Rng rng(9);
  EXPECT_THROW(rng.uniform(5, 4), contract_error);
}

TEST(Rng, Uniform01InHalfOpenInterval) {
  Rng rng(11);
  double sum = 0.0;
  for (int i = 0; i < 5000; ++i) {
    const double v = rng.uniform01();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 5000.0, 0.5, 0.03);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 10000; ++i)
    if (rng.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
  EXPECT_FALSE(rng.bernoulli(0.0));
  EXPECT_TRUE(rng.bernoulli(1.0));
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(42);
  Rng child = a.split();
  // The child stream differs from the parent's continued stream.
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == child.next_u64()) ++equal;
  EXPECT_LT(equal, 3);
  // Splitting is itself deterministic.
  Rng b(42);
  Rng child2 = b.split();
  Rng child_ref(Rng(42).next_u64());
  EXPECT_EQ(child2.next_u64(), child_ref.next_u64());
}

}  // namespace
}  // namespace sysrle
