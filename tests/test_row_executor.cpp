// Tests for the native row-parallel executor: coverage (every index exactly
// once), slot discipline, thread-count resolution, exception propagation,
// forced parallelism, and a concurrent-callers hammer (run under TSan in CI).

#include "core/row_executor.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

namespace sysrle {
namespace {

TEST(RowExecutor, EveryIndexRunsExactlyOnce) {
  RowExecutor pool(RowExecutorConfig{4, 16});
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  const RowRunStats stats = pool.run(
      kN, [&](std::size_t i, std::size_t) { hits[i].fetch_add(1); }, 4, 7);
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
  const std::uint64_t total = std::accumulate(
      stats.rows_per_slot.begin(), stats.rows_per_slot.end(), std::uint64_t{0});
  EXPECT_EQ(total, kN);
  EXPECT_GE(stats.threads_used(), 1u);
}

TEST(RowExecutor, MaxParallelismOneRunsOnCallerOnly) {
  RowExecutor pool(RowExecutorConfig{4, 16});
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::thread::id> ran_on(100);
  const RowRunStats stats = pool.run(
      ran_on.size(),
      [&](std::size_t i, std::size_t slot) {
        ran_on[i] = std::this_thread::get_id();
        EXPECT_EQ(slot, 0u);
      },
      1);
  for (const std::thread::id id : ran_on) EXPECT_EQ(id, caller);
  EXPECT_EQ(stats.threads_used(), 1u);
  EXPECT_EQ(stats.parallel_rows(), 0u);
}

TEST(RowExecutor, EmptyAndSingleIndexRuns) {
  RowExecutor pool(RowExecutorConfig{2, 16});
  bool ran = false;
  RowRunStats stats = pool.run(0, [&](std::size_t, std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
  EXPECT_EQ(stats.threads_used(), 0u);

  std::size_t got = 99;
  stats = pool.run(1, [&](std::size_t i, std::size_t slot) {
    got = i;
    EXPECT_EQ(slot, 0u);  // one index never leaves the caller
  });
  EXPECT_EQ(got, 0u);
  EXPECT_EQ(stats.threads_used(), 1u);
}

TEST(RowExecutor, SlotsAreDenseAndWithinPlan) {
  RowExecutor pool(RowExecutorConfig{4, 4});
  const std::size_t plan = pool.plan_slots(64, 4, 4);
  EXPECT_GE(plan, 1u);
  EXPECT_LE(plan, 4u);
  std::mutex mu;
  std::set<std::size_t> seen;
  pool.run(
      64,
      [&](std::size_t, std::size_t slot) {
        EXPECT_LT(slot, plan);
        std::lock_guard<std::mutex> lk(mu);
        seen.insert(slot);
      },
      4, 4);
  EXPECT_GE(seen.size(), 1u);
}

TEST(RowExecutor, PlanSlotsBoundedByChunks) {
  RowExecutor pool(RowExecutorConfig{8, 16});
  // 20 indices at chunk 16 is at most 2 chunks: no 3rd participant possible.
  EXPECT_LE(pool.plan_slots(20, 8, 16), 2u);
  EXPECT_EQ(pool.plan_slots(0, 8, 16), 0u);
  EXPECT_EQ(pool.plan_slots(1, 8, 16), 1u);
}

TEST(RowExecutor, ExceptionPropagatesAndPoolSurvives) {
  RowExecutor pool(RowExecutorConfig{4, 1});
  EXPECT_THROW(
      pool.run(100,
               [](std::size_t i, std::size_t) {
                 if (i == 37) throw std::runtime_error("row 37 failed");
               },
               4),
      std::runtime_error);

  // The pool is reusable after a failed run.
  std::atomic<std::size_t> count{0};
  pool.run(50, [&](std::size_t, std::size_t) { count.fetch_add(1); }, 4);
  EXPECT_EQ(count.load(), 50u);
}

TEST(RowExecutor, ResolveThreadsRules) {
  EXPECT_GE(RowExecutor::resolve_threads(0), 1u);  // auto is never 0
  EXPECT_EQ(RowExecutor::resolve_threads(1), 1u);
  EXPECT_EQ(RowExecutor::resolve_threads(5), 5u);  // explicit requests honoured
  EXPECT_EQ(RowExecutor::resolve_threads(1000000), RowExecutor::kMaxThreads);
}

TEST(RowExecutor, ForcedParallelismEngagesHelpers) {
  // A barrier inside the body: no participant can finish its first index
  // until all 4 slots have arrived, so the run *must* use 4 threads even on
  // a 1-core machine.  This is the oversubscription guarantee --threads
  // relies on.
  RowExecutor pool(RowExecutorConfig{4, 1});
  constexpr std::size_t kSlots = 4;
  ASSERT_EQ(pool.plan_slots(kSlots, kSlots, 1), kSlots);
  std::mutex mu;
  std::condition_variable cv;
  std::size_t arrived = 0;
  const RowRunStats stats = pool.run(
      kSlots,
      [&](std::size_t, std::size_t) {
        std::unique_lock<std::mutex> lk(mu);
        ++arrived;
        cv.notify_all();
        cv.wait(lk, [&] { return arrived == kSlots; });
      },
      kSlots, 1);
  EXPECT_EQ(stats.threads_used(), kSlots);
  EXPECT_EQ(stats.parallel_rows(), kSlots - 1);
}

TEST(RowExecutor, ConcurrentCallersShareThePool) {
  // Several threads issue run() against one pool at once — the service's
  // usage pattern.  Checked for data races by the TSan CI job.
  RowExecutor pool(RowExecutorConfig{4, 8});
  constexpr int kCallers = 4;
  constexpr std::size_t kN = 300;
  std::atomic<std::uint64_t> grand_total{0};
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&] {
      for (int rep = 0; rep < 5; ++rep) {
        std::atomic<std::uint64_t> local{0};
        pool.run(
            kN, [&](std::size_t i, std::size_t) { local.fetch_add(i + 1); },
            3);
        EXPECT_EQ(local.load(), kN * (kN + 1) / 2);
        grand_total.fetch_add(local.load());
      }
    });
  }
  for (std::thread& t : callers) t.join();
  EXPECT_EQ(grand_total.load(), kCallers * 5 * (kN * (kN + 1) / 2));
}

TEST(RowExecutor, GlobalPoolIsUsable) {
  std::atomic<std::size_t> count{0};
  RowExecutor::global().run(10,
                            [&](std::size_t, std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 10u);
}

}  // namespace
}  // namespace sysrle
