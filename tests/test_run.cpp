// Unit tests for the RunT value type.

#include "rle/run.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/assert.hpp"

namespace sysrle {
namespace {

using RunT = ::sysrle::Run;  // avoid collision with testing::Test::Run

TEST(RunT, StoresStartAndLength) {
  const RunT r{10, 3};
  EXPECT_EQ(r.start, 10);
  EXPECT_EQ(r.length, 3);
  EXPECT_EQ(r.end(), 12);
}

TEST(RunT, FromBoundsBuildsClosedInterval) {
  const RunT r = RunT::from_bounds(5, 9);
  EXPECT_EQ(r.start, 5);
  EXPECT_EQ(r.length, 5);
  EXPECT_EQ(r.end(), 9);
}

TEST(RunT, FromBoundsSinglePixel) {
  const RunT r = RunT::from_bounds(7, 7);
  EXPECT_EQ(r.length, 1);
}

TEST(RunT, FromBoundsRejectsEmptyInterval) {
  EXPECT_THROW(RunT::from_bounds(8, 7), contract_error);
}

TEST(RunT, ContainsChecksClosedInterval) {
  const RunT r{10, 3};  // [10, 12]
  EXPECT_FALSE(r.contains(9));
  EXPECT_TRUE(r.contains(10));
  EXPECT_TRUE(r.contains(11));
  EXPECT_TRUE(r.contains(12));
  EXPECT_FALSE(r.contains(13));
}

TEST(RunT, OverlapsDetectsSharedPixels) {
  const RunT a{10, 5};  // [10,14]
  EXPECT_TRUE(a.overlaps(RunT{14, 3}));
  EXPECT_TRUE(a.overlaps(RunT{8, 3}));
  EXPECT_TRUE(a.overlaps(RunT{11, 2}));
  EXPECT_TRUE(a.overlaps(RunT{5, 20}));
  EXPECT_FALSE(a.overlaps(RunT{15, 2}));
  EXPECT_FALSE(a.overlaps(RunT{5, 5}));
}

TEST(RunT, AdjacencyIsTouchingWithoutOverlap) {
  const RunT a{10, 5};  // [10,14]
  EXPECT_TRUE(a.adjacent_to(RunT{15, 2}));
  EXPECT_TRUE(a.adjacent_to(RunT{5, 5}));  // [5,9]
  EXPECT_FALSE(a.adjacent_to(RunT{14, 2}));
  EXPECT_FALSE(a.adjacent_to(RunT{16, 2}));
}

TEST(RunT, OrderingIsLexicographicOnStartThenEnd) {
  EXPECT_LT((RunT{5, 3}), (RunT{6, 1}));
  EXPECT_LT((RunT{5, 3}), (RunT{5, 4}));
  EXPECT_EQ((RunT{5, 3}), (RunT{5, 3}));
  EXPECT_GT((RunT{7, 1}), (RunT{5, 10}));
}

TEST(RunT, ToStringMatchesPaperNotation) {
  EXPECT_EQ((RunT{10, 3}).to_string(), "(10,3)");
  std::ostringstream os;
  os << RunT{3, 4};
  EXPECT_EQ(os.str(), "(3,4)");
}

}  // namespace
}  // namespace sysrle
