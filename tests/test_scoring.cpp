// Tests for detection scoring (precision/recall against ground truth).

#include "inspect/scoring.hpp"

#include <gtest/gtest.h>

namespace sysrle {
namespace {

Defect defect_at(pos_t x0, pos_t y0, pos_t x1, pos_t y1) {
  Defect d;
  d.region.min_x = x0;
  d.region.min_y = y0;
  d.region.max_x = x1;
  d.region.max_y = y1;
  d.region.pixel_count = (x1 - x0 + 1) * (y1 - y0 + 1);
  return d;
}

InjectedDefect truth_at(pos_t x, pos_t y, pos_t w, pos_t h) {
  return {DefectType::kOpen, x, y, w, h};
}

TEST(Scoring, PerfectDetection) {
  const std::vector<Defect> detected{defect_at(10, 10, 12, 12)};
  const std::vector<InjectedDefect> truth{truth_at(10, 10, 3, 3)};
  const DetectionScore s = score_detections(detected, truth);
  EXPECT_EQ(s.true_positives, 1u);
  EXPECT_EQ(s.false_negatives, 0u);
  EXPECT_EQ(s.false_positives, 0u);
  EXPECT_DOUBLE_EQ(s.precision(), 1.0);
  EXPECT_DOUBLE_EQ(s.recall(), 1.0);
  EXPECT_DOUBLE_EQ(s.f1(), 1.0);
}

TEST(Scoring, MissedDefectIsFalseNegative) {
  const std::vector<Defect> detected;
  const std::vector<InjectedDefect> truth{truth_at(5, 5, 2, 2)};
  const DetectionScore s = score_detections(detected, truth);
  EXPECT_EQ(s.false_negatives, 1u);
  EXPECT_DOUBLE_EQ(s.recall(), 0.0);
  EXPECT_DOUBLE_EQ(s.f1(), 0.0);
}

TEST(Scoring, SpuriousDetectionIsFalsePositive) {
  const std::vector<Defect> detected{defect_at(50, 50, 52, 52)};
  const std::vector<InjectedDefect> truth{truth_at(5, 5, 2, 2)};
  const DetectionScore s = score_detections(detected, truth);
  EXPECT_EQ(s.false_positives, 1u);
  EXPECT_EQ(s.false_negatives, 1u);
  EXPECT_DOUBLE_EQ(s.precision(), 0.0);
}

TEST(Scoring, TouchingBoxesCountAsOverlap) {
  // Detection bbox [10,12]x[10,12]; truth starting exactly at (12,12).
  const std::vector<Defect> detected{defect_at(10, 10, 12, 12)};
  const std::vector<InjectedDefect> truth{truth_at(12, 12, 3, 3)};
  const DetectionScore s = score_detections(detected, truth);
  EXPECT_EQ(s.true_positives, 1u);
  // Just past the corner: no overlap.
  const std::vector<InjectedDefect> miss{truth_at(13, 13, 3, 3)};
  EXPECT_EQ(score_detections(detected, miss).true_positives, 0u);
}

TEST(Scoring, OneDetectionCoveringTwoTruths) {
  const std::vector<Defect> detected{defect_at(0, 0, 30, 2)};
  const std::vector<InjectedDefect> truth{truth_at(2, 0, 3, 3),
                                          truth_at(20, 0, 3, 3)};
  const DetectionScore s = score_detections(detected, truth);
  EXPECT_EQ(s.true_positives, 2u);
  EXPECT_EQ(s.false_positives, 0u);
}

TEST(Scoring, TwoDetectionsOnOneTruth) {
  const std::vector<Defect> detected{defect_at(2, 0, 3, 1),
                                     defect_at(4, 2, 5, 3)};
  const std::vector<InjectedDefect> truth{truth_at(2, 0, 4, 4)};
  const DetectionScore s = score_detections(detected, truth);
  EXPECT_EQ(s.true_positives, 1u);
  EXPECT_EQ(s.false_positives, 0u);
}

TEST(Scoring, EmptyEverything) {
  const DetectionScore s = score_detections({}, {});
  EXPECT_DOUBLE_EQ(s.precision(), 0.0);
  EXPECT_DOUBLE_EQ(s.recall(), 0.0);
  EXPECT_DOUBLE_EQ(s.f1(), 0.0);
}

TEST(Scoring, ToStringContainsMetrics) {
  const std::vector<Defect> detected{defect_at(10, 10, 12, 12)};
  const std::vector<InjectedDefect> truth{truth_at(10, 10, 3, 3)};
  const std::string s = score_detections(detected, truth).to_string();
  EXPECT_NE(s.find("TP=1"), std::string::npos);
  EXPECT_NE(s.find("F1="), std::string::npos);
}

}  // namespace
}  // namespace sysrle
