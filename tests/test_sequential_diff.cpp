// Tests for the paper's sequential merge baseline.

#include "baseline/sequential_diff.hpp"

#include <gtest/gtest.h>

#include "rle/ops.hpp"
#include "test_util.hpp"
#include "workload/rng.hpp"

namespace sysrle {
namespace {

using sysrle::testing::random_row;
using sysrle::testing::reference_xor;

TEST(SequentialDiff, PaperFigure1) {
  const RleRow img1{{10, 3}, {16, 2}, {23, 2}, {27, 3}};
  const RleRow img2{{3, 4}, {8, 5}, {15, 5}, {23, 2}, {27, 4}};
  const SequentialDiffResult r = sequential_xor(img1, img2);
  EXPECT_EQ(r.output.canonical(),
            (RleRow{{3, 4}, {8, 2}, {15, 1}, {18, 2}, {30, 1}}));
}

TEST(SequentialDiff, EmptyInputs) {
  EXPECT_TRUE(sequential_xor(RleRow{}, RleRow{}).output.empty());
  EXPECT_EQ(sequential_xor(RleRow{}, RleRow{}).iterations, 0u);
  const RleRow a{{3, 2}, {8, 1}};
  EXPECT_EQ(sequential_xor(a, RleRow{}).output, a);
  EXPECT_EQ(sequential_xor(a, RleRow{}).iterations, 2u);  // one per run
  EXPECT_EQ(sequential_xor(RleRow{}, a).output, a);
}

TEST(SequentialDiff, IdenticalInputsCancel) {
  const RleRow a{{3, 2}, {8, 1}, {20, 5}};
  const SequentialDiffResult r = sequential_xor(a, a);
  EXPECT_TRUE(r.output.empty());
  EXPECT_EQ(r.iterations, 3u);  // one cancellation per run pair
}

TEST(SequentialDiff, OverlapSplitsCountExtraIterations) {
  // a = [0,10], b = [3,5]: emit [0,2], cancel [3,5], emit [6,10].
  const SequentialDiffResult r = sequential_xor(RleRow{{0, 11}}, RleRow{{3, 3}});
  EXPECT_EQ(r.output, (RleRow{{0, 3}, {6, 5}}));
  EXPECT_EQ(r.iterations, 3u);
}

TEST(SequentialDiff, OutputMayContainAdjacentRuns) {
  // Adjacent inputs across the two lists leave adjacent output runs — the
  // same behaviour the paper notes for the systolic machine.
  const SequentialDiffResult r =
      sequential_xor(RleRow{{0, 4}}, RleRow{{4, 4}});
  EXPECT_EQ(r.output.run_count(), 2u);
  EXPECT_FALSE(r.output.is_canonical());
  EXPECT_EQ(r.output.canonical(), (RleRow{{0, 8}}));
}

TEST(SequentialDiff, MatchesReferenceOnRandomInputs) {
  Rng rng(601);
  for (int trial = 0; trial < 80; ++trial) {
    const pos_t width = rng.uniform(1, 250);
    const RleRow a = random_row(rng, width, rng.uniform01());
    const RleRow b = random_row(rng, width, rng.uniform01());
    const SequentialDiffResult r = sequential_xor(a, b);
    EXPECT_EQ(r.output.canonical(), reference_xor(a, b, width))
        << "trial " << trial;
  }
}

TEST(SequentialDiff, IterationsScaleWithTotalRuns) {
  // The paper: sequential time is proportional to k1 + k2 regardless of
  // similarity.  Identical inputs — maximal similarity — still cost
  // max(k1, k2) iterations, unlike the systolic machine's single iteration.
  Rng rng(602);
  const RleRow a = random_row(rng, 5000, 0.4);
  const SequentialDiffResult same = sequential_xor(a, a);
  EXPECT_EQ(same.iterations, a.run_count());
  EXPECT_GT(same.iterations, 100u);  // genuinely linear in k
}

}  // namespace
}  // namespace sysrle
