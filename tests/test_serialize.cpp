// Tests for the RLE image serialization formats.

#include "rle/serialize.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/assert.hpp"
#include "workload/generator.hpp"
#include "workload/rng.hpp"

namespace sysrle {
namespace {

RleImage sample_image() {
  Rng rng(51);
  RowGenParams p;
  p.width = 300;
  return generate_image(rng, 12, p);
}

TEST(Serialize, BinaryRoundTrip) {
  const RleImage img = sample_image();
  std::stringstream ss;
  write_rle(ss, img, RleFormat::kBinary);
  EXPECT_EQ(read_rle(ss), img);
}

TEST(Serialize, TextRoundTrip) {
  const RleImage img = sample_image();
  std::stringstream ss;
  write_rle(ss, img, RleFormat::kText);
  EXPECT_EQ(read_rle(ss), img);
}

TEST(Serialize, EmptyImageRoundTrips) {
  const RleImage img(0, 0);
  for (const RleFormat f : {RleFormat::kText, RleFormat::kBinary}) {
    std::stringstream ss;
    write_rle(ss, img, f);
    const RleImage back = read_rle(ss);
    EXPECT_EQ(back.width(), 0);
    EXPECT_EQ(back.height(), 0);
  }
}

TEST(Serialize, FormatAutoDetected) {
  const RleImage img = sample_image();
  std::stringstream text, binary;
  write_rle(text, img, RleFormat::kText);
  write_rle(binary, img, RleFormat::kBinary);
  EXPECT_NE(text.str(), binary.str());
  EXPECT_EQ(read_rle(text), read_rle(binary));
}

TEST(Serialize, MagicBytesIdentifyFormat) {
  const RleImage img = sample_image();
  std::stringstream text, binary;
  write_rle(text, img, RleFormat::kText);
  write_rle(binary, img, RleFormat::kBinary);
  EXPECT_EQ(text.str().substr(0, 4), "SRLT");
  EXPECT_EQ(binary.str().substr(0, 4), "SRLB");
  // Binary size is exactly predictable: magic + 3 header fields + per-row
  // count + 2 fields per run, all 8 bytes.
  std::size_t expected = 4 + 3 * 8;
  for (pos_t y = 0; y < img.height(); ++y)
    expected += 8 + 16 * img.row(y).run_count();
  EXPECT_EQ(binary.str().size(), expected);
}

TEST(Serialize, RejectsUnknownMagic) {
  std::stringstream ss("XXXX whatever");
  EXPECT_THROW(read_rle(ss), contract_error);
}

TEST(Serialize, RejectsTruncatedBinary) {
  const RleImage img = sample_image();
  std::stringstream ss;
  write_rle(ss, img, RleFormat::kBinary);
  const std::string full = ss.str();
  std::stringstream cut(full.substr(0, full.size() / 2));
  EXPECT_THROW(read_rle(cut), contract_error);
}

TEST(Serialize, RejectsCorruptRuns) {
  // Text image with an overlapping run pair.
  std::stringstream ss("SRLT\n10 1\n2 0 5 3 4\n");
  EXPECT_THROW(read_rle(ss), contract_error);
  // Run exceeding the declared width.
  std::stringstream ss2("SRLT\n10 1\n1 8 4\n");
  EXPECT_THROW(read_rle(ss2), contract_error);
}

TEST(Serialize, FuzzCorruptionNeverCrashes) {
  // Flip one byte at every position of a serialized image: the reader must
  // either succeed (header-irrelevant bit) or throw contract_error — never
  // crash, hang, or return quietly-wrong dimensions.
  const RleImage img = sample_image();
  for (const RleFormat f : {RleFormat::kBinary, RleFormat::kText}) {
    std::stringstream ss;
    write_rle(ss, img, f);
    const std::string clean = ss.str();
    // Stride through the stream to keep the test fast but cover header,
    // row counts and run payloads.
    for (std::size_t pos = 0; pos < clean.size(); pos += 7) {
      for (const char flip : {'\x01', '\x80'}) {
        std::string corrupt = clean;
        corrupt[pos] = static_cast<char>(corrupt[pos] ^ flip);
        std::stringstream in(corrupt);
        try {
          const RleImage back = read_rle(in);
          // Accepted: must still be a structurally valid image.
          EXPECT_GE(back.width(), 0);
          EXPECT_GE(back.height(), 0);
        } catch (const contract_error&) {
          // Rejected cleanly: fine.
        }
      }
    }
  }
}

TEST(Serialize, FuzzTruncationAlwaysThrows) {
  const RleImage img = sample_image();
  std::stringstream ss;
  write_rle(ss, img, RleFormat::kBinary);
  const std::string clean = ss.str();
  for (std::size_t keep = 4; keep + 8 < clean.size(); keep += 13) {
    std::stringstream in(clean.substr(0, keep));
    EXPECT_THROW(read_rle(in), contract_error) << "kept " << keep;
  }
}

/// Appends one little-endian 8-byte field, mirroring the SRLB layout.
void append_i64(std::string& s, std::int64_t v) {
  const auto u = static_cast<std::uint64_t>(v);
  for (int i = 0; i < 8; ++i)
    s.push_back(static_cast<char>((u >> (8 * i)) & 0xff));
}

TEST(Serialize, EveryByteCorruptionOfSmallBinaryIsContained) {
  // Exhaustive hostility on a small SRLB file: flip every bit of every byte
  // and truncate at every prefix length.  The reader must either accept a
  // structurally valid image or throw contract_error — never crash, hang,
  // or allocate absurdly.
  RleImage img(32, 3);
  img.set_row(0, RleRow{{1, 3}, {10, 2}});
  img.set_row(1, RleRow{});
  img.set_row(2, RleRow{{0, 32}});
  std::stringstream ss;
  write_rle(ss, img, RleFormat::kBinary);
  const std::string clean = ss.str();

  for (std::size_t pos = 0; pos < clean.size(); ++pos) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string corrupt = clean;
      corrupt[pos] = static_cast<char>(corrupt[pos] ^ (1 << bit));
      std::stringstream in(corrupt);
      try {
        const RleImage back = read_rle(in);
        EXPECT_GE(back.width(), 0);
        EXPECT_GE(back.height(), 0);
        for (pos_t y = 0; y < back.height(); ++y)
          EXPECT_TRUE(back.row(y).fits_width(back.width()));
      } catch (const contract_error&) {
        // Rejected cleanly: fine.
      }
    }
  }
  for (std::size_t keep = 0; keep < clean.size(); ++keep) {
    std::stringstream in(clean.substr(0, keep));
    EXPECT_THROW(read_rle(in), contract_error) << "kept " << keep;
  }
}

TEST(Serialize, RejectsHostileBinaryHeadersWithoutHugeAllocation) {
  // Run count exceeding what the width can hold.
  std::string oversized("SRLB");
  append_i64(oversized, 1);   // version
  append_i64(oversized, 10);  // width
  append_i64(oversized, 1);   // height
  append_i64(oversized, 1'000'000);  // count for row 0
  std::stringstream in(oversized);
  EXPECT_THROW(read_rle(in), contract_error);

  // Absurd dimensions must be rejected before any row allocation.
  std::string huge("SRLB");
  append_i64(huge, 1);
  append_i64(huge, std::int64_t{1} << 40);
  append_i64(huge, std::int64_t{1} << 40);
  std::stringstream in2(huge);
  EXPECT_THROW(read_rle(in2), contract_error);

  // Negative width.
  std::string negw("SRLB");
  append_i64(negw, 1);
  append_i64(negw, -5);
  append_i64(negw, 3);
  std::stringstream in3(negw);
  EXPECT_THROW(read_rle(in3), contract_error);

  // Negative run count.
  std::string negc("SRLB");
  append_i64(negc, 1);
  append_i64(negc, 10);
  append_i64(negc, 1);
  append_i64(negc, -1);
  std::stringstream in4(negc);
  EXPECT_THROW(read_rle(in4), contract_error);

  // A claim of 2^20 rows with no row data fails at the first missing row,
  // not by preallocating 2^20 rows.
  std::string claim("SRLB");
  append_i64(claim, 1);
  append_i64(claim, 10);
  append_i64(claim, std::int64_t{1} << 20);
  std::stringstream in5(claim);
  EXPECT_THROW(read_rle(in5), contract_error);
}

TEST(Serialize, RejectsHostileTextHeaders) {
  // Run count exceeding the width.
  std::stringstream t1("SRLT\n4 1\n9 0 1 1 1 2 1 3 1\n");
  EXPECT_THROW(read_rle(t1), contract_error);
  // Implausible dimensions.
  std::stringstream t2("SRLT\n99999999999 99999999999\n");
  EXPECT_THROW(read_rle(t2), contract_error);
  // Negative run start.
  std::stringstream t3("SRLT\n10 1\n1 -3 4\n");
  EXPECT_THROW(read_rle(t3), contract_error);
  // Negative run length.
  std::stringstream t4("SRLT\n10 1\n1 3 -4\n");
  EXPECT_THROW(read_rle(t4), contract_error);
  // Non-numeric garbage where a count should be.
  std::stringstream t5("SRLT\n10 2\nbanana\n");
  EXPECT_THROW(read_rle(t5), contract_error);
}

TEST(Serialize, FileRoundTrip) {
  const RleImage img = sample_image();
  const std::string path = ::testing::TempDir() + "/sysrle_serialize_test.srl";
  write_rle_file(path, img);
  EXPECT_EQ(read_rle_file(path), img);
  EXPECT_THROW(read_rle_file(path + ".missing"), contract_error);
}

// The content-address contract: two in-memory representations of the same
// pixels must serialize to byte-identical canonical bytes and therefore
// fingerprint identically — a run split as (0,2)(2,3) versus the merged
// (0,5) is the classic case.
TEST(Serialize, CanonicalBytesRepresentationIndependent) {
  RleImage split(10, 1);
  split.set_row(0, RleRow({{0, 2}, {2, 3}}));
  RleImage merged(10, 1);
  merged.set_row(0, RleRow({{0, 5}}));
  ASSERT_FALSE(split.row(0).is_canonical());
  ASSERT_TRUE(merged.row(0).is_canonical());
  EXPECT_EQ(canonical_rle_bytes(split), canonical_rle_bytes(merged));
  EXPECT_EQ(canonical_fingerprint(split), canonical_fingerprint(merged));
}

// The streamed fingerprint must equal hashing the materialized canonical
// bytes — one byte sequence, two computations.
TEST(Serialize, CanonicalFingerprintMatchesBytes) {
  const RleImage img = sample_image();
  const std::string bytes = canonical_rle_bytes(img);
  EXPECT_EQ(canonical_fingerprint(img),
            fingerprint_bytes(bytes.data(), bytes.size()));
}

// Canonical bytes are valid SRLB: reading them back yields the same pixels
// (canonicalized), so the store can keep them as its collision-defense
// identity and still rehydrate if it ever needs to.
TEST(Serialize, CanonicalBytesRoundTrip) {
  RleImage split(10, 2);
  split.set_row(0, RleRow({{0, 2}, {2, 3}}));
  split.set_row(1, RleRow({{4, 1}, {5, 2}}));
  std::stringstream ss(canonical_rle_bytes(split));
  const RleImage back = read_rle(ss);
  ASSERT_EQ(back.height(), 2);
  EXPECT_EQ(back.row(0), RleRow({{0, 5}}));
  EXPECT_EQ(back.row(1), RleRow({{4, 3}}));
}

// Different pixels must (for any realistic corpus) fingerprint differently;
// at minimum the canonical bytes differ.
TEST(Serialize, DifferentPixelsDifferentBytes) {
  RleImage a(10, 1);
  a.set_row(0, RleRow({{0, 5}}));
  RleImage b(10, 1);
  b.set_row(0, RleRow({{0, 6}}));
  EXPECT_NE(canonical_rle_bytes(a), canonical_rle_bytes(b));
  EXPECT_NE(canonical_fingerprint(a), canonical_fingerprint(b));
}

}  // namespace
}  // namespace sysrle
