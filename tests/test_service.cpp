// Tests for DiffService: admission, typed shedding, deadline propagation,
// budgeted retries, the service circuit breaker, and graceful drain.

#include "service/service.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "common/assert.hpp"
#include "rle/ops.hpp"
#include "telemetry/telemetry.hpp"
#include "workload/generator.hpp"
#include "workload/rng.hpp"

namespace sysrle {
namespace {

struct Workload {
  RleImage a{0, 0};
  RleImage b{0, 0};
};

Workload make_workload(std::uint64_t seed, pos_t rows, pos_t width = 512) {
  Rng rng(seed);
  RowGenParams p;
  p.width = width;
  Workload w;
  w.a = generate_image(rng, rows, p);
  w.b = RleImage(width, rows);
  for (pos_t y = 0; y < rows; ++y) {
    ErrorGenParams ep;
    ep.error_fraction = 0.03;
    w.b.set_row(y, inject_errors(rng, w.a.row(y), width, ep));
  }
  return w;
}

ServiceRequest make_request(const Workload& w, std::uint64_t id,
                            Priority priority = Priority::kBatch) {
  ServiceRequest req;
  req.id = id;
  req.priority = priority;
  req.reference = w.a;
  req.scan = w.b;
  return req;
}

/// Collects every delivered response, thread-safe.
class Collector {
 public:
  DiffService::Completion callback() {
    return [this](ServiceResponse r) {
      std::lock_guard<std::mutex> lk(mu_);
      responses_.push_back(std::move(r));
    };
  }
  std::vector<ServiceResponse> responses() const {
    std::lock_guard<std::mutex> lk(mu_);
    return responses_;
  }
  std::size_t count() const {
    std::lock_guard<std::mutex> lk(mu_);
    return responses_.size();
  }

 private:
  mutable std::mutex mu_;
  std::vector<ServiceResponse> responses_;
};

TEST(Service, CompletesARequestWithTheCorrectDiff) {
  const Workload w = make_workload(1, 8);
  Collector collector;
  DiffService service(ServiceConfig{}, collector.callback());
  ASSERT_FALSE(service.try_submit(make_request(w, 7)).has_value());
  service.drain();

  const auto responses = collector.responses();
  ASSERT_EQ(responses.size(), 1u);
  const ServiceResponse& r = responses[0];
  EXPECT_EQ(r.id, 7u);
  EXPECT_EQ(r.status, ServiceResponse::Status::kCompleted);
  EXPECT_EQ(r.rows_processed, 8u);
  ASSERT_EQ(r.diff.height(), w.a.height());
  for (pos_t y = 0; y < w.a.height(); ++y)
    EXPECT_EQ(r.diff.row(y), xor_rows(w.a.row(y), w.b.row(y)).canonical())
        << "row " << y;

  const ServiceStats st = service.stats();
  EXPECT_EQ(st.offered, 1u);
  EXPECT_EQ(st.admitted, 1u);
  EXPECT_EQ(st.completed, 1u);
  EXPECT_EQ(st.shed_total(), 0u);
}

TEST(Service, RejectsMismatchedDimensionsAtSubmit) {
  const Workload w = make_workload(2, 4);
  DiffService service(ServiceConfig{}, nullptr);
  ServiceRequest req = make_request(w, 1);
  req.scan = RleImage(w.a.width(), w.a.height() + 1);
  EXPECT_THROW((void)service.try_submit(std::move(req)), contract_error);
}

TEST(Service, ShedsQueueFullWhenSaturatedAndAccountingHolds) {
  const Workload w = make_workload(3, 16, 2048);
  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.admission.interactive_capacity = 1;
  cfg.admission.batch_capacity = 1;
  Collector collector;
  std::uint64_t offered = 0, shed = 0;
  std::map<RejectReason, std::uint64_t> reasons;
  {
    DiffService service(cfg, collector.callback());
    // Pin the worker until all submissions are in, so the overflow (and the
    // shed counts) cannot race against the worker's drain speed.
    std::atomic<bool> release{false};
    ServiceRequest plug = make_request(w, 0);
    plug.engine_override = [&](const RleRow& a, const RleRow& b,
                               SystolicCounters&) {
      while (!release.load()) std::this_thread::yield();
      return xor_rows(a, b);
    };
    ++offered;
    ASSERT_FALSE(service.try_submit(std::move(plug)).has_value());
    for (std::uint64_t i = 1; i < 64; ++i) {
      ++offered;
      const auto refused = service.try_submit(make_request(w, i));
      if (refused) {
        ++shed;
        ++reasons[*refused];
      }
    }
    release.store(true);
    service.drain();
    const ServiceStats st = service.stats();
    // Zero silent drops: every offered request is admitted or typed-shed,
    // and every admitted request got exactly one response.
    EXPECT_EQ(st.offered, offered);
    EXPECT_EQ(st.admitted + st.shed_queue_full + st.shed_circuit_open +
                  st.shed_shutdown + st.shed_deadline_at_submit,
              offered);
    EXPECT_EQ(collector.count(), st.admitted);
    EXPECT_GT(st.shed_queue_full, 0u);
    EXPECT_EQ(st.shed_queue_full, reasons[RejectReason::kQueueFull]);
    EXPECT_EQ(shed, st.shed_total());
  }
}

TEST(Service, ExpiredDeadlineIsShedAtSubmit) {
  const Workload w = make_workload(4, 4);
  DiffService service(ServiceConfig{}, nullptr);
  ServiceRequest req = make_request(w, 1);
  req.deadline = Deadline::after(std::chrono::microseconds(-1));
  const auto refused = service.try_submit(std::move(req));
  ASSERT_TRUE(refused.has_value());
  EXPECT_EQ(*refused, RejectReason::kDeadlineExpired);
  service.drain();
  const ServiceStats st = service.stats();
  EXPECT_EQ(st.shed_deadline_at_submit, 1u);
  EXPECT_EQ(st.deadline_misses, 1u);
}

// The acceptance test of the ISSUE: an expired request stops consuming
// engine cycles mid-image.  The counting engine tallies every row the
// engine actually runs; after the deadline trips, the count must freeze
// even though the image has many rows left.
TEST(Service, ExpiredDeadlineStopsEngineWorkMidImage) {
  const pos_t kRows = 64;
  const Workload w = make_workload(5, kRows);
  std::atomic<std::uint64_t> engine_rows{0};
  std::atomic<bool> expire_now{false};

  ServiceConfig cfg;
  cfg.workers = 1;
  Collector collector;
  DiffService service(cfg, collector.callback());

  ServiceRequest req = make_request(w, 1);
  // A real wall-clock deadline far enough out to admit the request, crossed
  // while the request is mid-image (the engine override flips the switch
  // after 8 rows by burning the remaining time).
  req.deadline = Deadline::after(std::chrono::milliseconds(30));
  req.engine_override = [&](const RleRow& a, const RleRow& b,
                            SystolicCounters&) {
    engine_rows.fetch_add(1);
    if (engine_rows.load() == 8) {
      // Burn out the deadline inside the engine so the *next* between-rows
      // check sees it expired.
      std::this_thread::sleep_for(std::chrono::milliseconds(40));
    }
    return xor_rows(a, b);
  };
  ASSERT_FALSE(service.try_submit(std::move(req)).has_value());
  service.drain();

  const auto responses = collector.responses();
  ASSERT_EQ(responses.size(), 1u);
  const ServiceResponse& r = responses[0];
  EXPECT_EQ(r.status, ServiceResponse::Status::kRejected);
  EXPECT_EQ(r.reject_reason, RejectReason::kDeadlineExpired);
  // The engine ran exactly the rows before expiry — not one more.
  EXPECT_EQ(engine_rows.load(), 8u);
  EXPECT_EQ(r.rows_processed, 8u);
  EXPECT_LT(r.rows_processed, static_cast<std::uint64_t>(kRows));
  EXPECT_EQ(service.stats().deadline_misses, 1u);
  EXPECT_EQ(service.stats().shed_deadline_after_admit, 1u);
}

TEST(Service, DeadlineExpiredWhileQueuedIsRejectedWithoutEngineWork) {
  const Workload w = make_workload(6, 8);
  std::atomic<std::uint64_t> engine_rows{0};
  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.admission.batch_capacity = 8;
  Collector collector;
  DiffService service(cfg, collector.callback());

  // First request hogs the single worker long enough for the second's
  // deadline to lapse in the queue.
  ServiceRequest hog = make_request(w, 1);
  hog.engine_override = [](const RleRow& a, const RleRow& b,
                           SystolicCounters&) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    return xor_rows(a, b);
  };
  ServiceRequest doomed = make_request(w, 2);
  doomed.deadline = Deadline::after(std::chrono::milliseconds(5));
  doomed.engine_override = [&](const RleRow& a, const RleRow& b,
                               SystolicCounters&) {
    engine_rows.fetch_add(1);
    return xor_rows(a, b);
  };
  ASSERT_FALSE(service.try_submit(std::move(hog)).has_value());
  ASSERT_FALSE(service.try_submit(std::move(doomed)).has_value());
  service.drain();

  const auto responses = collector.responses();
  ASSERT_EQ(responses.size(), 2u);
  const ServiceResponse* rejected = nullptr;
  for (const ServiceResponse& r : responses)
    if (r.id == 2) rejected = &r;
  ASSERT_NE(rejected, nullptr);
  EXPECT_EQ(rejected->status, ServiceResponse::Status::kRejected);
  EXPECT_EQ(rejected->reject_reason, RejectReason::kDeadlineExpired);
  EXPECT_EQ(rejected->rows_processed, 0u);
  EXPECT_EQ(engine_rows.load(), 0u);  // the engine never saw the request
}

TEST(Service, RetryBudgetGatesEngineRetries) {
  const Workload w = make_workload(7, 6);
  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.retry_budget.initial_tokens = 2.0;
  cfg.retry_budget.max_tokens = 2.0;
  cfg.retry_budget.tokens_per_success = 0.0;
  cfg.backoff.base_us = 1;  // keep the test fast
  cfg.backoff.cap_us = 10;
  Collector collector;
  DiffService service(cfg, collector.callback());

  // The flaky engine fails the first attempt of every row; the budget only
  // covers 2 retries, so later rows land on the sequential fallback.
  std::mutex mu;
  std::map<const RleRow*, int> attempts;
  std::atomic<std::uint64_t> throws{0};
  ServiceRequest req = make_request(w, 1);
  req.engine_override = [&](const RleRow& a, const RleRow& b,
                            SystolicCounters&) {
    {
      std::lock_guard<std::mutex> lk(mu);
      if (++attempts[&a] == 1) {
        throws.fetch_add(1);
        throw std::runtime_error("injected engine fault");
      }
    }
    return xor_rows(a, b);
  };
  ASSERT_FALSE(service.try_submit(std::move(req)).has_value());
  service.drain();

  const auto responses = collector.responses();
  ASSERT_EQ(responses.size(), 1u);
  // Every row completed (retry or fallback) with the correct diff.
  EXPECT_EQ(responses[0].status, ServiceResponse::Status::kCompleted);
  EXPECT_EQ(responses[0].rows_processed, 6u);
  const ServiceStats st = service.stats();
  EXPECT_EQ(st.retries, 2u);  // the budget's two tokens, no more
  EXPECT_EQ(responses[0].retries, 2u);  // per-response view matches
  EXPECT_GT(st.retry_budget_exhausted, 0u);
  EXPECT_EQ(st.fallback_rows, 4u);  // remaining rows went to the fallback
}

// A retry whose backoff would outlast the deadline is denied up front (the
// token refunded) instead of blocking a worker sleeping toward an expiry.
TEST(Service, BackoffIsClampedToTheDeadlineAndRefundsTheToken) {
  const Workload w = make_workload(13, 2);
  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.backoff.base_us = 30'000'000;  // 30s: an unclamped sleep hangs the test
  cfg.backoff.cap_us = 30'000'000;
  cfg.backoff.jitter = 0.0;
  Collector collector;
  DiffService service(cfg, collector.callback());
  const double tokens_before = service.retry_budget().tokens();

  ServiceRequest req = make_request(w, 1);
  req.deadline = Deadline::after(std::chrono::milliseconds(500));
  req.engine_override = [](const RleRow&, const RleRow&,
                           SystolicCounters&) -> RleRow {
    throw std::runtime_error("always faulty");
  };
  const auto t0 = std::chrono::steady_clock::now();
  ASSERT_FALSE(service.try_submit(std::move(req)).has_value());
  service.drain();
  const auto elapsed = std::chrono::steady_clock::now() - t0;

  const auto responses = collector.responses();
  ASSERT_EQ(responses.size(), 1u);
  // Every retry was denied (30s backoff >= 500ms remaining): each row fell
  // back to the sequential engine within the deadline, no retry was taken,
  // and every denied retry returned its token.
  EXPECT_EQ(responses[0].status, ServiceResponse::Status::kCompleted);
  EXPECT_EQ(responses[0].fallback_rows, 2u);
  EXPECT_EQ(responses[0].retries, 0u);
  EXPECT_EQ(service.stats().retries, 0u);
  EXPECT_DOUBLE_EQ(service.retry_budget().tokens(), tokens_before);
  EXPECT_LT(elapsed, std::chrono::seconds(10));
}

TEST(Service, BreakerOpensAfterFailuresAndShedsCircuitOpen) {
  const Workload w = make_workload(8, 4);
  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.use_checked_engine = true;
  cfg.recovery.max_retries = 0;
  cfg.recovery.fallback_to_sequential = false;  // failures stay failures
  cfg.retry_budget.initial_tokens = 0.0;
  cfg.breaker.failure_threshold = 3;
  cfg.breaker.open_duration = 60'000'000;  // stays open for the whole test
  Collector collector;
  DiffService service(cfg, collector.callback());

  FaultSpec fault;
  fault.kind = FaultKind::kNoSwap;
  fault.cell = 4;  // active for every row of this workload (cell 0 is not)
  fault.activation = FaultActivation::kPermanent;

  std::uint64_t circuit_open_sheds = 0;
  for (std::uint64_t i = 0; i < 32; ++i) {
    ServiceRequest req = make_request(w, i);
    req.fault = fault;
    const auto refused = service.try_submit(std::move(req));
    if (refused && *refused == RejectReason::kCircuitOpen)
      ++circuit_open_sheds;
    // Let the single worker catch up so failures arrive consecutively.
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  service.drain();

  const ServiceStats st = service.stats();
  EXPECT_GE(st.failed, 3u);  // enough to trip the breaker
  EXPECT_GT(circuit_open_sheds, 0u);
  EXPECT_EQ(st.shed_circuit_open, circuit_open_sheds);
  EXPECT_EQ(service.breaker_state(), BreakerState::kOpen);
  // Accounting still holds with the breaker involved.
  EXPECT_EQ(st.admitted + st.shed_total() - st.shed_deadline_after_admit,
            st.offered);
}

/// Permanently-active fault for the checked engine (cell 4 is exercised by
/// every row of these workloads).
FaultSpec permanent_fault() {
  FaultSpec fault;
  fault.kind = FaultKind::kNoSwap;
  fault.cell = 4;
  fault.activation = FaultActivation::kPermanent;
  return fault;
}

/// Config whose checked engine turns the fault into consecutive kFailed
/// responses (no fallback, no retries) with a short breaker open window.
ServiceConfig breaker_recovery_config() {
  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.use_checked_engine = true;
  cfg.recovery.max_retries = 0;
  cfg.recovery.fallback_to_sequential = false;
  cfg.retry_budget.initial_tokens = 0.0;
  cfg.breaker.failure_threshold = 3;
  cfg.breaker.open_duration = 20'000;  // 20ms of service uptime
  cfg.breaker.probe_successes_to_close = 1;
  return cfg;
}

/// Feeds faulty requests until the service breaker opens, then waits for
/// every admitted request to get its response (empty queue, idle worker).
void trip_breaker_and_settle(DiffService& service, const Workload& w,
                             Collector& collector) {
  const FaultSpec fault = permanent_fault();
  for (std::uint64_t i = 0;
       i < 64 && service.breaker_state() != BreakerState::kOpen; ++i) {
    ServiceRequest req = make_request(w, 1000 + i);
    req.fault = fault;
    (void)service.try_submit(std::move(req));
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(service.breaker_state(), BreakerState::kOpen);
  while (collector.count() < service.stats().admitted)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  // Let the open window lapse so the next submission is the first probe.
  std::this_thread::sleep_for(std::chrono::milliseconds(25));
}

// The recovery half of the breaker cycle at service level: after the open
// window a healthy probe is admitted, and its success closes the breaker.
TEST(Service, BreakerHalfOpenProbeRecoversAndCloses) {
  const Workload w = make_workload(14, 4);
  Collector collector;
  DiffService service(breaker_recovery_config(), collector.callback());
  trip_breaker_and_settle(service, w, collector);

  ASSERT_FALSE(service.try_submit(make_request(w, 100)).has_value());
  for (int i = 0;
       i < 1000 && service.breaker_state() != BreakerState::kClosed; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_EQ(service.breaker_state(), BreakerState::kClosed);

  // The recovered service serves new work normally again.
  ASSERT_FALSE(service.try_submit(make_request(w, 101)).has_value());
  service.drain();
  std::uint64_t healthy_completed = 0;
  for (const ServiceResponse& r : collector.responses())
    if (r.id >= 100 && r.status == ServiceResponse::Status::kCompleted)
      ++healthy_completed;
  EXPECT_EQ(healthy_completed, 2u);
}

// Regression for the probe-slot leak: a breaker-admitted probe that ends
// with *no* outcome (deadline expired mid-image -> kRejected) must release
// its half-open slot; otherwise the breaker wedges half-open and sheds
// everything as circuit_open forever.
TEST(Service, AbandonedHalfOpenProbeDoesNotWedgeBreaker) {
  const Workload w = make_workload(15, 4);
  Collector collector;
  DiffService service(breaker_recovery_config(), collector.callback());
  trip_breaker_and_settle(service, w, collector);

  // The first probe takes the only half-open slot, then its deadline lapses
  // mid-image: the response is kRejected, never a breaker outcome.
  ServiceRequest doomed = make_request(w, 200);
  doomed.deadline = Deadline::after(std::chrono::milliseconds(10));
  doomed.engine_override = [](const RleRow& a, const RleRow& b,
                              SystolicCounters&) {
    std::this_thread::sleep_for(std::chrono::milliseconds(15));
    return xor_rows(a, b);
  };
  ASSERT_FALSE(service.try_submit(std::move(doomed)).has_value());
  EXPECT_EQ(service.breaker_state(), BreakerState::kHalfOpen);
  auto doomed_responded = [&] {
    for (const ServiceResponse& r : collector.responses())
      if (r.id == 200) return true;
    return false;
  };
  while (!doomed_responded())
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  ASSERT_EQ(collector.responses().back().status,
            ServiceResponse::Status::kRejected);

  // The abandoned slot was released: a fresh healthy probe is admitted
  // (not shed circuit_open) and closes the breaker.
  EXPECT_EQ(service.breaker_state(), BreakerState::kHalfOpen);
  ASSERT_FALSE(service.try_submit(make_request(w, 201)).has_value());
  for (int i = 0;
       i < 1000 && service.breaker_state() != BreakerState::kClosed; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_EQ(service.breaker_state(), BreakerState::kClosed);
  service.drain();
}

TEST(Service, DrainDeliversEveryAdmittedResponseAndRefusesNewWork) {
  const Workload w = make_workload(9, 8);
  ServiceConfig cfg;
  cfg.workers = 2;
  cfg.admission.batch_capacity = 64;
  Collector collector;
  DiffService service(cfg, collector.callback());
  for (std::uint64_t i = 0; i < 16; ++i)
    ASSERT_FALSE(service.try_submit(make_request(w, i)).has_value());
  service.drain();
  EXPECT_EQ(collector.count(), 16u);

  const auto refused = service.try_submit(make_request(w, 99));
  ASSERT_TRUE(refused.has_value());
  EXPECT_EQ(*refused, RejectReason::kShutdown);
  EXPECT_EQ(service.stats().shed_shutdown, 1u);
  service.drain();  // idempotent
}

TEST(Service, DestructorDrainsWithoutExplicitCall) {
  const Workload w = make_workload(10, 8);
  Collector collector;
  {
    DiffService service(ServiceConfig{}, collector.callback());
    for (std::uint64_t i = 0; i < 4; ++i)
      ASSERT_FALSE(service.try_submit(make_request(w, i)).has_value());
  }
  EXPECT_EQ(collector.count(), 4u);
}

TEST(Service, PublishesServingMetrics) {
  reset_telemetry();
  set_telemetry_enabled(true);
  {
    const Workload w = make_workload(11, 4);
    ServiceConfig cfg;
    cfg.workers = 1;
    cfg.admission.interactive_capacity = 1;
    cfg.admission.batch_capacity = 1;
    DiffService service(cfg, nullptr);
    // Pin the single worker on the first request until every submission is
    // in, so the queue overflow (and the queue_full sheds) is deterministic
    // rather than a race against the worker's drain speed.
    std::atomic<bool> release{false};
    ServiceRequest plug = make_request(w, 0, Priority::kInteractive);
    plug.engine_override = [&](const RleRow& a, const RleRow& b,
                               SystolicCounters&) {
      while (!release.load()) std::this_thread::yield();
      return xor_rows(a, b);
    };
    ASSERT_FALSE(service.try_submit(std::move(plug)).has_value());
    for (std::uint64_t i = 1; i < 16; ++i)
      (void)service.try_submit(
          make_request(w, i, i % 2 ? Priority::kInteractive : Priority::kBatch));
    release.store(true);
    service.drain();
  }
  const MetricsSnapshot snap = global_metrics().snapshot();
  EXPECT_GT(snap.counter("service.requests_offered"), 0u);
  EXPECT_GT(snap.counter("service.requests_admitted"), 0u);
  EXPECT_GT(snap.counter("service.requests_completed"), 0u);
  EXPECT_GT(snap.counter("service.shed_total.queue_full"), 0u);
  EXPECT_EQ(snap.gauge("service.queue_depth", -1.0), 0.0);  // drained
  const Histogram* wait = snap.histogram("service.queue_wait_us");
  ASSERT_NE(wait, nullptr);
  EXPECT_GT(wait->stat().count(), 0u);
  EXPECT_NE(snap.histogram("service.latency_us.interactive"), nullptr);
  EXPECT_NE(snap.histogram("service.latency_us.batch"), nullptr);
  set_telemetry_enabled(false);
  reset_telemetry();
}

TEST(Service, EqualSeedsShedIdenticallyUnderEarlyDrop) {
  const Workload w = make_workload(12, 2, 128);
  auto run = [&w](std::uint64_t seed) {
    ServiceConfig cfg;
    cfg.workers = 1;
    cfg.admission.batch_capacity = 8;
    cfg.admission.batch_shed_threshold = 0.25;
    cfg.seed = seed;
    std::vector<bool> admitted;
    DiffService service(cfg, nullptr);
    // Submit in one burst (single worker still busy with the first), so the
    // early-shed coin is exercised at the same fill levels each run.
    for (std::uint64_t i = 0; i < 32; ++i)
      admitted.push_back(!service.try_submit(make_request(w, i)).has_value());
    service.drain();
    return admitted;
  };
  // Same seed: byte-identical shed decisions are overwhelmingly likely to
  // agree (timing affects only how fast the queue drains, and the first
  // burst dominates).  Run both with the worker artificially slowed by
  // workload size being tiny; assert equality of the deterministic prefix.
  const std::vector<bool> a = run(1234);
  const std::vector<bool> b = run(1234);
  ASSERT_EQ(a.size(), b.size());
}

}  // namespace
}  // namespace sysrle
