// Tests for ShardRouter: routing, failover across killed replicas, hedged
// requests (fired / won / suppressed), in-flight coalescing edge cases
// (waiter deadlines, promotion, bit-identical fan-out), degraded mode, and
// the zero-silent-drops accounting identity.

#include "service/shard_router.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "rle/ops.hpp"
#include "rle/serialize.hpp"
#include "store/image_store.hpp"
#include "store/result_cache.hpp"
#include "telemetry/flight_recorder.hpp"
#include "workload/generator.hpp"
#include "workload/rng.hpp"

namespace sysrle {
namespace {

struct Workload {
  RleImage a{0, 0};
  RleImage b{0, 0};
};

Workload make_workload(std::uint64_t seed, pos_t rows = 8, pos_t width = 256) {
  Rng rng(seed);
  RowGenParams p;
  p.width = width;
  Workload w;
  w.a = generate_image(rng, rows, p);
  w.b = RleImage(width, rows);
  for (pos_t y = 0; y < rows; ++y) {
    ErrorGenParams ep;
    ep.error_fraction = 0.03;
    w.b.set_row(y, inject_errors(rng, w.a.row(y), width, ep));
  }
  return w;
}

ServiceRequest make_request(const Workload& w, std::uint64_t id,
                            Priority priority = Priority::kBatch) {
  ServiceRequest req;
  req.id = id;
  req.priority = priority;
  req.reference = w.a;
  req.scan = w.b;
  return req;
}

void expect_correct_diff(const ServiceResponse& r, const Workload& w) {
  ASSERT_EQ(r.diff.height(), w.a.height());
  for (pos_t y = 0; y < w.a.height(); ++y)
    EXPECT_EQ(r.diff.row(y), xor_rows(w.a.row(y), w.b.row(y)).canonical())
        << "row " << y;
}

class Collector {
 public:
  /// Blocks (bounded) until `n` responses have been delivered — used before
  /// drain() in tests whose asynchronous machinery (hedge timer, waiter
  /// promotion) must run against a live router, not a draining one.
  void wait_for(std::size_t n) const {
    for (int i = 0; i < 5000; ++i) {
      {
        std::lock_guard<std::mutex> lk(mu_);
        if (responses_.size() >= n) return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    FAIL() << "timed out waiting for " << n << " responses";
  }

  ShardRouter::Completion callback() {
    return [this](ServiceResponse r) {
      std::lock_guard<std::mutex> lk(mu_);
      by_id_.emplace(r.id, r);
      responses_.push_back(std::move(r));
    };
  }
  std::vector<ServiceResponse> responses() const {
    std::lock_guard<std::mutex> lk(mu_);
    return responses_;
  }
  /// The one response delivered for request `id` (fails the test if the
  /// router delivered zero or several — the accounting contract).
  ServiceResponse only(std::uint64_t id) const {
    std::lock_guard<std::mutex> lk(mu_);
    EXPECT_EQ(by_id_.count(id), 1u) << "request " << id;
    auto it = by_id_.find(id);
    return it == by_id_.end() ? ServiceResponse{} : it->second;
  }

 private:
  mutable std::mutex mu_;
  std::vector<ServiceResponse> responses_;
  std::multimap<std::uint64_t, ServiceResponse> by_id_;
};

RouterConfig small_router(std::size_t shards, std::size_t replicas,
                          bool hedge_enabled = false) {
  RouterConfig cfg;
  cfg.shards = shards;
  cfg.replicas = replicas;
  cfg.replica_service.workers = 1;
  cfg.hedge.enabled = hedge_enabled;
  return cfg;
}

/// A batch request whose engine blocks every row until `release` flips —
/// pins one replica's worker so later submissions are deterministically
/// in flight (engine overrides are never coalesced, so the plug cannot
/// interfere with coalescing under test).
ServiceRequest make_plug(const Workload& w, std::uint64_t id,
                         std::atomic<bool>& release) {
  ServiceRequest plug = make_request(w, id);
  plug.engine_override = [&release](const RleRow& a, const RleRow& b,
                                    SystolicCounters&) {
    while (!release.load()) std::this_thread::yield();
    return xor_rows(a, b);
  };
  return plug;
}

TEST(ShardRouter, RoutesCompletesAndAccountsAcrossShards) {
  Collector collector;
  ShardRouter router(small_router(3, 2), collector.callback());
  std::vector<Workload> pool;
  for (std::uint64_t i = 0; i < 12; ++i) {
    pool.push_back(make_workload(100 + i));
    ASSERT_FALSE(router.try_submit(make_request(pool.back(), i)).has_value());
  }
  router.drain();

  const RouterStats st = router.stats();
  EXPECT_EQ(st.offered, 12u);
  EXPECT_EQ(st.admitted, 12u);
  EXPECT_EQ(st.completed, 12u);
  EXPECT_TRUE(st.accounted());
  for (std::uint64_t i = 0; i < 12; ++i) {
    const ServiceResponse r = collector.only(i);
    EXPECT_EQ(r.status, ServiceResponse::Status::kCompleted);
    expect_correct_diff(r, pool[i]);
  }
}

TEST(ShardRouter, RouteKeyOverrideAndContentKeysAreStable) {
  const Workload w = make_workload(1);
  ServiceRequest req = make_request(w, 1);
  const std::uint64_t content_key = ShardRouter::route_key_of(req);
  EXPECT_EQ(content_key, ShardRouter::route_key_of(req));
  EXPECT_NE(content_key, 0u);

  req.route_key = 77;
  EXPECT_EQ(ShardRouter::route_key_of(req), 77u);

  Collector collector;
  ShardRouter router(small_router(4, 1), collector.callback());
  EXPECT_EQ(router.shard_of(77), router.shard_of(77));
  EXPECT_LT(router.shard_of(77), 4u);
  router.drain();
}

TEST(ShardRouter, ShedsTypedAtSubmitWhenDrainingOrExpired) {
  Collector collector;
  ShardRouter router(small_router(1, 1), collector.callback());
  const Workload w = make_workload(2);

  ServiceRequest expired = make_request(w, 1);
  expired.deadline = Deadline::after(std::chrono::microseconds(0));
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  auto reason = router.try_submit(std::move(expired));
  ASSERT_TRUE(reason.has_value());
  EXPECT_EQ(*reason, RejectReason::kDeadlineExpired);

  router.drain();
  reason = router.try_submit(make_request(w, 2));
  ASSERT_TRUE(reason.has_value());
  EXPECT_EQ(*reason, RejectReason::kShutdown);

  const RouterStats st = router.stats();
  EXPECT_EQ(st.offered, 2u);
  EXPECT_EQ(st.shed_deadline_at_submit, 1u);
  EXPECT_EQ(st.shed_shutdown, 1u);
  EXPECT_TRUE(st.accounted());
  EXPECT_TRUE(collector.responses().empty());
}

TEST(ShardRouter, CoalescedWaiterGetsBitIdenticalResponse) {
  Collector collector;
  ShardRouter router(small_router(1, 1), collector.callback());
  const Workload plug_w = make_workload(10);
  const Workload w = make_workload(11);

  std::atomic<bool> release{false};
  ASSERT_FALSE(router.try_submit(make_plug(plug_w, 1, release)).has_value());
  ASSERT_FALSE(router.try_submit(make_request(w, 100)).has_value());
  ASSERT_FALSE(router.try_submit(make_request(w, 101)).has_value());
  release.store(true);
  router.drain();

  const RouterStats st = router.stats();
  EXPECT_EQ(st.coalesced, 1u);
  EXPECT_TRUE(st.accounted());

  const ServiceResponse primary = collector.only(100);
  const ServiceResponse waiter = collector.only(101);
  EXPECT_EQ(primary.status, ServiceResponse::Status::kCompleted);
  EXPECT_EQ(waiter.status, ServiceResponse::Status::kCompleted);
  // Bit-identical: the waiter received a copy of the primary's diff, and
  // both equal the uncoalesced ground truth.
  EXPECT_EQ(primary.diff, waiter.diff);
  expect_correct_diff(primary, w);
  expect_correct_diff(waiter, w);
}

TEST(ShardRouter, WaiterWithShorterDeadlineShedsTypedWhilePrimaryCompletes) {
  Collector collector;
  ShardRouter router(small_router(1, 1), collector.callback());
  const Workload plug_w = make_workload(12);
  const Workload w = make_workload(13);

  std::atomic<bool> release{false};
  ASSERT_FALSE(router.try_submit(make_plug(plug_w, 1, release)).has_value());
  ASSERT_FALSE(router.try_submit(make_request(w, 100)).has_value());
  ServiceRequest short_lived = make_request(w, 101);
  short_lived.deadline = Deadline::after(std::chrono::milliseconds(1));
  ASSERT_FALSE(router.try_submit(std::move(short_lived)).has_value());
  // Let the waiter's deadline lapse while the plug still pins the worker.
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  release.store(true);
  router.drain();

  const RouterStats st = router.stats();
  EXPECT_EQ(st.coalesced, 1u);
  EXPECT_EQ(st.waiter_deadline_sheds, 1u);
  EXPECT_TRUE(st.accounted());

  EXPECT_EQ(collector.only(100).status, ServiceResponse::Status::kCompleted);
  const ServiceResponse waiter = collector.only(101);
  EXPECT_EQ(waiter.status, ServiceResponse::Status::kRejected);
  EXPECT_EQ(waiter.reject_reason, RejectReason::kDeadlineExpired);
}

TEST(ShardRouter, ExpiredPrimaryPromotesLiveWaiterToNewPrimary) {
  Collector collector;
  ShardRouter router(small_router(1, 1), collector.callback());
  const Workload plug_w = make_workload(14);
  const Workload w = make_workload(15);

  std::atomic<bool> release{false};
  ASSERT_FALSE(router.try_submit(make_plug(plug_w, 1, release)).has_value());
  ServiceRequest doomed = make_request(w, 100);
  doomed.deadline = Deadline::after(std::chrono::milliseconds(1));
  ASSERT_FALSE(router.try_submit(std::move(doomed)).has_value());
  ASSERT_FALSE(router.try_submit(make_request(w, 101)).has_value());
  // The primary's deadline lapses in the queue behind the plug; the waiter
  // has none and must inherit the computation.
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  release.store(true);
  // The promotion re-dispatch must land in a live backend, not a draining
  // one: wait for all three outcomes (plug, doomed primary, promoted
  // waiter) before tearing down.
  collector.wait_for(3);
  router.drain();

  const RouterStats st = router.stats();
  EXPECT_EQ(st.coalesced, 1u);
  EXPECT_EQ(st.coalesce_promotions, 1u);
  EXPECT_TRUE(st.accounted());

  const ServiceResponse doomed_r = collector.only(100);
  EXPECT_EQ(doomed_r.status, ServiceResponse::Status::kRejected);
  EXPECT_EQ(doomed_r.reject_reason, RejectReason::kDeadlineExpired);
  const ServiceResponse promoted = collector.only(101);
  EXPECT_EQ(promoted.status, ServiceResponse::Status::kCompleted);
  expect_correct_diff(promoted, w);
}

TEST(ShardRouter, FailsOverAcrossReplicasWhenOneIsKilled) {
  Collector collector;
  RouterConfig cfg = small_router(1, 2);
  ShardRouter router(cfg, collector.callback());
  router.kill_replica(0, 0);

  for (std::uint64_t i = 0; i < 8; ++i) {
    const Workload w = make_workload(200 + i);
    ASSERT_FALSE(router.try_submit(make_request(w, i)).has_value())
        << "request " << i << " should fail over, not shed";
  }
  router.drain();

  const RouterStats st = router.stats();
  EXPECT_EQ(st.completed, 8u);
  EXPECT_GT(st.failovers, 0u);
  EXPECT_TRUE(st.accounted());
  // The killed replica kept shedding until its router breaker quarantined it.
  EXPECT_EQ(router.replica_breaker_state(0, 0), BreakerState::kOpen);
  EXPECT_EQ(router.healthy_replicas(), 1u);
}

TEST(ShardRouter, ProbeReadmitsARevivedReplica) {
  Collector collector;
  RouterConfig cfg = small_router(1, 2);
  cfg.replica_breaker.open_duration = 20000;  // 20 ms quarantine
  ShardRouter router(cfg, collector.callback());
  router.kill_replica(0, 0);

  for (std::uint64_t i = 0; i < 8; ++i)
    ASSERT_FALSE(
        router.try_submit(make_request(make_workload(300 + i), i)).has_value());
  ASSERT_EQ(router.replica_breaker_state(0, 0), BreakerState::kOpen);

  router.revive_replica(0, 0);
  std::this_thread::sleep_for(std::chrono::milliseconds(25));
  // Fresh traffic: keys preferring replica 0 probe it half-open; the
  // revived backend completes the probe and the breaker closes.
  for (std::uint64_t i = 8; i < 24; ++i)
    ASSERT_FALSE(
        router.try_submit(make_request(make_workload(300 + i), i)).has_value());
  router.drain();

  const RouterStats st = router.stats();
  EXPECT_EQ(st.completed, 24u);
  EXPECT_TRUE(st.accounted());
  EXPECT_EQ(router.replica_breaker_state(0, 0), BreakerState::kClosed);
  EXPECT_EQ(router.healthy_replicas(), 2u);
}

TEST(ShardRouter, DegradedModeShedsBatchTypedAndFailsOverInteractive) {
  Collector collector;
  ShardRouter router(small_router(2, 1), collector.callback());

  // A key homed on each shard, via the public ring lookup.
  std::uint64_t dead_key = 0;
  for (std::uint64_t k = 1; dead_key == 0; ++k)
    if (router.shard_of(k) == 0) dead_key = k;
  router.kill_replica(0, 0);

  const Workload w = make_workload(20);
  ServiceRequest batch = make_request(w, 1);
  batch.route_key = dead_key;
  const auto reason = router.try_submit(std::move(batch));
  ASSERT_TRUE(reason.has_value());
  EXPECT_EQ(*reason, RejectReason::kShardDown);

  ServiceRequest interactive = make_request(w, 2, Priority::kInteractive);
  interactive.route_key = dead_key;
  ASSERT_FALSE(router.try_submit(std::move(interactive)).has_value());
  router.drain();

  const RouterStats st = router.stats();
  EXPECT_EQ(st.shed_shard_down, 1u);
  EXPECT_GE(st.cross_shard_failovers, 1u);
  EXPECT_EQ(st.completed, 1u);
  EXPECT_TRUE(st.accounted());

  const ServiceResponse r = collector.only(2);
  EXPECT_EQ(r.status, ServiceResponse::Status::kCompleted);
  expect_correct_diff(r, w);
}

TEST(ShardRouter, HedgeFiresToASecondReplicaAndOneResponseWins) {
  Collector collector;
  RouterConfig cfg = small_router(1, 2, /*hedge_enabled=*/true);
  cfg.hedge.fixed_delay_us = 2000;
  cfg.coalesce = false;
  ShardRouter router(cfg, collector.callback());

  const Workload w = make_workload(21, /*rows=*/4, /*width=*/128);
  ServiceRequest req = make_request(w, 1, Priority::kInteractive);
  // ~40 ms of engine time per dispatch: the 2 ms hedge delay always lapses
  // while the primary is mid-image.
  req.engine_override = [](const RleRow& a, const RleRow& b,
                           SystolicCounters&) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    return xor_rows(a, b);
  };
  ASSERT_FALSE(router.try_submit(std::move(req)).has_value());
  // Draining joins the hedge timer; wait for the winner first so the 2 ms
  // hedge delay elapses against a live router.
  collector.wait_for(1);
  router.drain();

  const RouterStats st = router.stats();
  EXPECT_EQ(st.hedges_fired, 1u);
  EXPECT_EQ(st.hedges_won + st.hedges_lost, 1u);
  EXPECT_EQ(st.completed, 1u);
  EXPECT_TRUE(st.accounted());
  EXPECT_EQ(collector.only(1).status, ServiceResponse::Status::kCompleted);
  EXPECT_EQ(collector.responses().size(), 1u) << "loser must be swallowed";
}

TEST(ShardRouter, HedgeSuppressedWhenBudgetIsExhausted) {
  Collector collector;
  RouterConfig cfg = small_router(1, 2, /*hedge_enabled=*/true);
  cfg.hedge.fixed_delay_us = 1000;
  cfg.hedge.budget.initial_tokens = 0.0;
  cfg.hedge.budget.tokens_per_success = 0.0;
  cfg.coalesce = false;
  ShardRouter router(cfg, collector.callback());

  const Workload w = make_workload(22, /*rows=*/2, /*width=*/128);
  ServiceRequest req = make_request(w, 1, Priority::kInteractive);
  req.engine_override = [](const RleRow& a, const RleRow& b,
                           SystolicCounters&) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    return xor_rows(a, b);
  };
  ASSERT_FALSE(router.try_submit(std::move(req)).has_value());
  collector.wait_for(1);
  router.drain();

  const RouterStats st = router.stats();
  EXPECT_EQ(st.hedges_fired, 0u);
  EXPECT_EQ(st.hedges_suppressed, 1u);
  EXPECT_EQ(st.completed, 1u);
  EXPECT_TRUE(st.accounted());
}

TEST(ShardRouter, HedgeWinLeavesARetainedFlightTimeline) {
  // End-to-end flight-recorder integration: force a deterministic hedge win
  // (the primary's replica is pinned by an engine that never finishes until
  // the hedge has won) and assert the recorder retained the full story —
  // admit, both dispatches, hedge_fired, hedge_won, respond — keyed by the
  // client's request id.
  FlightRecorder flight(1 << 10);
  set_flight_recorder(&flight);

  Collector collector;
  RouterConfig cfg = small_router(1, 2, /*hedge_enabled=*/true);
  cfg.hedge.fixed_delay_us = 2000;
  cfg.coalesce = false;
  {
    ShardRouter router(cfg, collector.callback());
    const Workload w = make_workload(23, /*rows=*/4, /*width=*/128);
    ServiceRequest req = make_request(w, 77, Priority::kInteractive);
    std::atomic<int> dispatches{0};
    req.engine_override = [&dispatches](const RleRow& a, const RleRow& b,
                                        SystolicCounters&) {
      // First dispatch (the primary) stalls each row; the hedge runs clean
      // and wins.
      if (dispatches.fetch_add(1) == 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      return xor_rows(a, b);
    };
    ASSERT_FALSE(router.try_submit(std::move(req)).has_value());
    collector.wait_for(1);
    router.drain();

    const RouterStats st = router.stats();
    ASSERT_EQ(st.hedges_fired, 1u);
    ASSERT_EQ(st.hedges_won, 1u);
    EXPECT_TRUE(st.accounted());
  }
  set_flight_recorder(nullptr);

  // The ring reconstructs the request end to end under the client id.
  const std::vector<FlightEvent> timeline = flight.timeline(77);
  ASSERT_FALSE(timeline.empty());
  int dispatches_seen = 0;
  bool fired = false, won = false, responded = false;
  std::uint32_t hedge_attempt = 0;
  for (const FlightEvent& e : timeline) {
    switch (e.kind) {
      case FlightEventKind::kDispatch:
        ++dispatches_seen;
        break;
      case FlightEventKind::kHedgeFired:
        fired = true;
        break;
      case FlightEventKind::kHedgeWon:
        won = true;
        hedge_attempt = e.ctx.attempt;
        EXPECT_GE(e.ctx.shard, 0);
        EXPECT_GE(e.ctx.replica, 0);
        break;
      case FlightEventKind::kRespond:
        // Backend-level responds (routed ctx) include the cancelled loser's
        // rejection; the client-visible delivery is the unrouted one.
        if (e.ctx.shard < 0) {
          responded = true;
          EXPECT_STREQ(e.detail, "completed");
        }
        break;
      default:
        break;
    }
  }
  EXPECT_EQ(dispatches_seen, 2) << "primary + hedge";
  EXPECT_TRUE(fired);
  EXPECT_TRUE(won);
  EXPECT_TRUE(responded);
  EXPECT_GE(hedge_attempt, 1u) << "the hedge is never dispatch ordinal 0";

  // ... and the win was anomaly-retained, surviving any later ring wrap.
  bool retained_win = false;
  for (const FlightRecorder::RetainedTimeline& t : flight.retained())
    if (t.request_id == 77 && t.anomaly == "hedge_won" && !t.events.empty())
      retained_win = true;
  EXPECT_TRUE(retained_win);
}

TEST(ShardRouter, MixedBurstWithEverythingEnabledStaysAccounted) {
  Collector collector;
  RouterConfig cfg = small_router(2, 2, /*hedge_enabled=*/true);
  cfg.hedge.fixed_delay_us = 500;
  ShardRouter router(cfg, collector.callback());

  // A small pool of pairs (duplicates force coalescing), mixed priorities,
  // some tight deadlines, and a mid-burst replica kill.
  std::vector<Workload> pool;
  for (std::uint64_t i = 0; i < 4; ++i) pool.push_back(make_workload(400 + i));
  std::uint64_t offered = 0, shed = 0;
  for (std::uint64_t i = 0; i < 40; ++i) {
    if (i == 20) router.kill_replica(0, 0);
    ServiceRequest req = make_request(
        pool[i % pool.size()], i,
        i % 3 == 0 ? Priority::kInteractive : Priority::kBatch);
    if (i % 7 == 0) req.deadline = Deadline::after_ms(5);
    ++offered;
    if (router.try_submit(std::move(req)).has_value()) ++shed;
  }
  router.drain();

  const RouterStats st = router.stats();
  EXPECT_EQ(st.offered, offered);
  EXPECT_EQ(st.shed_submit_total(), shed);
  EXPECT_TRUE(st.accounted())
      << "offered=" << st.offered << " admitted=" << st.admitted
      << " responses=" << st.responses() << " sheds=" << st.shed_submit_total();
  EXPECT_EQ(collector.responses().size(), st.responses());

  // Backend-level accounting survives too: every backend admission got a
  // backend response (completed, failed, or typed rejection).
  const ServiceStats bs = router.backend_stats();
  EXPECT_EQ(bs.responses(), bs.admitted);
}

// ------------------------------------------------------------- by handle

RouterConfig store_router(std::shared_ptr<ImageStore>& store,
                          std::shared_ptr<ResultCache>& cache) {
  store = std::make_shared<ImageStore>();
  cache = std::make_shared<ResultCache>();
  RouterConfig cfg = small_router(2, 1);
  cfg.store = store;
  cfg.cache = cache;
  return cfg;
}

TEST(ShardRouter, ByHandleRequestResolvesPinsAndCompletes) {
  std::shared_ptr<ImageStore> store;
  std::shared_ptr<ResultCache> cache;
  Collector collector;
  const Workload w = make_workload(600);
  ShardRouter router(store_router(store, cache), collector.callback());
  ServiceRequest req;
  req.id = 0;
  req.ref_handle = store->register_image(w.a).handle;
  req.scan_handle = store->register_image(w.b).handle;
  req.keep_diff = true;
  ASSERT_FALSE(router.try_submit(std::move(req)).has_value());
  router.drain();

  const ServiceResponse r = collector.only(0);
  ASSERT_EQ(r.status, ServiceResponse::Status::kCompleted);
  EXPECT_FALSE(r.from_cache);
  expect_correct_diff(r, w);
  EXPECT_TRUE(router.stats().accounted());
}

// The tentpole's acceptance bar: the second identical by-handle diff is
// served from the result cache — bit-identical payload, no second engine
// invocation (asserted via the backend's engine-invocation counter).
TEST(ShardRouter, SecondIdenticalByHandleDiffIsServedFromCache) {
  std::shared_ptr<ImageStore> store;
  std::shared_ptr<ResultCache> cache;
  Collector collector;
  const Workload w = make_workload(601);
  ShardRouter router(store_router(store, cache), collector.callback());
  const ImageHandle ha = store->register_image(w.a).handle;
  const ImageHandle hb = store->register_image(w.b).handle;

  auto by_handle = [&](std::uint64_t id) {
    ServiceRequest req;
    req.id = id;
    req.ref_handle = ha;
    req.scan_handle = hb;
    req.keep_diff = true;
    return req;
  };
  ASSERT_FALSE(router.try_submit(by_handle(0)).has_value());
  collector.wait_for(1);  // sequential, so the repeat cannot coalesce
  ASSERT_FALSE(router.try_submit(by_handle(1)).has_value());
  collector.wait_for(2);
  router.drain();

  const ServiceResponse first = collector.only(0);
  const ServiceResponse second = collector.only(1);
  ASSERT_EQ(first.status, ServiceResponse::Status::kCompleted);
  ASSERT_EQ(second.status, ServiceResponse::Status::kCompleted);
  EXPECT_FALSE(first.from_cache);
  EXPECT_TRUE(second.from_cache);
  EXPECT_EQ(second.diff, first.diff);  // bit-identical payload
  expect_correct_diff(second, w);

  const RouterStats st = router.stats();
  EXPECT_EQ(st.cache_hits, 1u);
  EXPECT_EQ(st.cache_misses, 1u);
  EXPECT_EQ(st.cache_stores, 1u);
  EXPECT_TRUE(st.accounted());
  // The engine ran once; the cache served the repeat without re-running it.
  EXPECT_EQ(router.backend_stats().engine_invocations, 1u);
  EXPECT_TRUE(cache->stats().accounted());
}

TEST(ShardRouter, UnknownHandleIsATypedShed) {
  std::shared_ptr<ImageStore> store;
  std::shared_ptr<ResultCache> cache;
  Collector collector;
  const Workload w = make_workload(602);
  ShardRouter router(store_router(store, cache), collector.callback());
  ServiceRequest req;
  req.id = 0;
  req.ref_handle = store->register_image(w.a).handle;
  req.scan_handle = 0xdeadbeef;  // never registered
  const std::optional<RejectReason> shed = router.try_submit(std::move(req));
  ASSERT_TRUE(shed.has_value());
  EXPECT_EQ(*shed, RejectReason::kUnknownHandle);
  router.drain();

  const RouterStats st = router.stats();
  EXPECT_EQ(st.shed_unknown_handle, 1u);
  EXPECT_TRUE(st.accounted());  // the shed is inside the identity
  EXPECT_TRUE(collector.responses().empty());
}

// A pinned request survives its operands being evicted mid-flight: the pin
// taken at submit keeps the image alive and blocks eviction of its entry
// until the response is delivered.
TEST(ShardRouter, ByHandleDiffSurvivesConcurrentStoreChurn) {
  std::shared_ptr<ImageStore> store;
  std::shared_ptr<ResultCache> cache;
  Collector collector;
  const Workload w = make_workload(603, 16, 512);
  StoreConfig tight;
  tight.capacity_bytes = 3 * canonical_rle_bytes(w.a).size();
  store = std::make_shared<ImageStore>(tight);
  cache = std::make_shared<ResultCache>();
  RouterConfig cfg = small_router(1, 1);
  cfg.store = store;
  cfg.cache = cache;
  ShardRouter router(cfg, collector.callback());
  const ImageHandle ha = store->register_image(w.a).handle;
  const ImageHandle hb = store->register_image(w.b).handle;

  ServiceRequest req;
  req.id = 0;
  req.ref_handle = ha;
  req.scan_handle = hb;
  req.keep_diff = true;
  ASSERT_FALSE(router.try_submit(std::move(req)).has_value());
  // Churn the store while the diff is in flight; the pinned operands must
  // not be evicted out from under the engine.
  for (std::uint64_t i = 0; i < 20; ++i) {
    Rng rng(700 + i);
    RowGenParams p;
    p.width = 512;
    (void)store->register_image(generate_image(rng, 16, p));
  }
  router.drain();

  const ServiceResponse r = collector.only(0);
  ASSERT_EQ(r.status, ServiceResponse::Status::kCompleted);
  expect_correct_diff(r, w);
  EXPECT_TRUE(store->stats().accounted());
}

}  // namespace
}  // namespace sysrle
