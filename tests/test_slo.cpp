// Tests for the SLO tracker: good/bad classification against the latency
// target, breach recording, rolling-window roll-off and ring recycling,
// burn-rate arithmetic, config clamping, and the gauge export.

#include "telemetry/slo.hpp"

#include <gtest/gtest.h>

#include <cstdint>

#include "telemetry/metrics.hpp"

namespace sysrle {
namespace {

SloTracker::Config small_config() {
  SloTracker::Config cfg;
  cfg.target_us = 1000;
  cfg.objective = 0.9;  // error budget 0.1
  cfg.bucket_width_us = 1000;
  cfg.short_window_buckets = 2;
  cfg.long_window_buckets = 4;
  return cfg;
}

TEST(SloTracker, ClassifiesAgainstTheLatencyTarget) {
  SloTracker slo(small_config());
  slo.record(10, 1000);  // exactly at target: good
  slo.record(20, 999);   // good
  slo.record(30, 1001);  // late: bad
  EXPECT_EQ(slo.total(), 3u);
  EXPECT_EQ(slo.bad(), 1u);

  const SloTracker::Burn b = slo.short_window(30);
  EXPECT_EQ(b.total, 3u);
  EXPECT_EQ(b.bad, 1u);
  EXPECT_NEAR(b.bad_fraction, 1.0 / 3.0, 1e-12);
}

TEST(SloTracker, BreachConsumesBudgetRegardlessOfLatency) {
  SloTracker slo(small_config());
  slo.record_breach(10);
  slo.record_breach(20);
  EXPECT_EQ(slo.total(), 2u);
  EXPECT_EQ(slo.bad(), 2u);
  EXPECT_DOUBLE_EQ(slo.short_window(20).bad_fraction, 1.0);
}

TEST(SloTracker, BurnRateIsBadFractionOverErrorBudget) {
  SloTracker slo(small_config());
  // 10 requests, 2 bad: bad_fraction 0.2, budget 0.1 -> burn rate 2.0.
  for (int i = 0; i < 8; ++i) slo.record(100, 10);
  slo.record_breach(100);
  slo.record(100, 5000);
  const SloTracker::Burn b = slo.long_window(100);
  EXPECT_EQ(b.total, 10u);
  EXPECT_EQ(b.bad, 2u);
  EXPECT_NEAR(b.bad_fraction, 0.2, 1e-12);
  EXPECT_NEAR(b.burn_rate, 2.0, 1e-9);
}

TEST(SloTracker, EmptyWindowsReportZero) {
  SloTracker slo(small_config());
  const SloTracker::Burn b = slo.short_window(0);
  EXPECT_EQ(b.total, 0u);
  EXPECT_DOUBLE_EQ(b.bad_fraction, 0.0);
  EXPECT_DOUBLE_EQ(b.burn_rate, 0.0);
}

TEST(SloTracker, WindowsRollOffOldBuckets) {
  SloTracker slo(small_config());  // buckets of 1000 us, short 2, long 4
  slo.record_breach(500);  // bucket epoch 1

  // Still inside both windows one bucket later.
  EXPECT_EQ(slo.short_window(1500).bad, 1u);
  EXPECT_EQ(slo.long_window(1500).bad, 1u);

  // Two buckets on, the short window has rolled past it; the long has not.
  EXPECT_EQ(slo.short_window(2500).bad, 0u);
  EXPECT_EQ(slo.long_window(2500).bad, 1u);

  // Past the long window too.
  EXPECT_EQ(slo.long_window(4500).bad, 0u);
  // Lifetime totals never roll off.
  EXPECT_EQ(slo.total(), 1u);
  EXPECT_EQ(slo.bad(), 1u);
}

TEST(SloTracker, RingSlotsRecycleAcrossEpochs) {
  SloTracker slo(small_config());  // ring of 4 slots
  slo.record(500, 1);       // epoch 1
  slo.record_breach(4500);  // epoch 5: recycles epoch 1's slot
  const SloTracker::Burn b = slo.long_window(4500);
  EXPECT_EQ(b.total, 1u) << "the recycled slot must not leak epoch 1 counts";
  EXPECT_EQ(b.bad, 1u);
  EXPECT_EQ(slo.total(), 2u);
}

TEST(SloTracker, DefaultConfigIsInteractiveP99FiftyMs) {
  SloTracker slo;
  EXPECT_EQ(slo.config().target_us, 50'000u);
  EXPECT_DOUBLE_EQ(slo.config().objective, 0.99);
  EXPECT_LE(slo.config().short_window_buckets,
            slo.config().long_window_buckets);
}

TEST(SloTracker, DegenerateConfigIsClamped) {
  SloTracker::Config cfg;
  cfg.bucket_width_us = 0;
  cfg.long_window_buckets = 0;
  cfg.short_window_buckets = 100;
  cfg.objective = 2.0;
  SloTracker slo(cfg);
  EXPECT_GE(slo.config().bucket_width_us, 1u);
  EXPECT_GE(slo.config().long_window_buckets, 1u);
  EXPECT_LE(slo.config().short_window_buckets,
            slo.config().long_window_buckets);
  // A clamped objective still yields a finite burn rate.
  slo.record_breach(10);
  const SloTracker::Burn b = slo.short_window(10);
  EXPECT_TRUE(b.burn_rate >= 0.0);
  EXPECT_TRUE(b.burn_rate < 1e9);
}

TEST(SloTracker, ExportGaugesPublishesWindowsAndTotals) {
  SloTracker slo(small_config());
  for (int i = 0; i < 9; ++i) slo.record(100, 10);
  slo.record_breach(100);

  MetricsRegistry registry;
  slo.export_gauges(registry, 100, "slo.test");
  const MetricsSnapshot s = registry.snapshot();
  EXPECT_DOUBLE_EQ(s.gauge("slo.test.target_us"), 1000.0);
  EXPECT_DOUBLE_EQ(s.gauge("slo.test.objective"), 0.9);
  EXPECT_NEAR(s.gauge("slo.test.bad_fraction_short"), 0.1, 1e-12);
  EXPECT_NEAR(s.gauge("slo.test.burn_rate_short"), 1.0, 1e-9);
  EXPECT_NEAR(s.gauge("slo.test.burn_rate_long"), 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(s.gauge("slo.test.good_total"), 9.0);
  EXPECT_DOUBLE_EQ(s.gauge("slo.test.bad_total"), 1.0);
}

}  // namespace
}  // namespace sysrle
