// Tests for the statistics helpers.

#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/assert.hpp"

namespace sysrle {
namespace {

TEST(RunningStat, EmptyIsZero) {
  const RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(RunningStat, SingleValue) {
  RunningStat s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(RunningStat, KnownMoments) {
  RunningStat s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(Quantiles, EmptyStatReportsZero) {
  const RunningStat s;
  EXPECT_DOUBLE_EQ(s.p50(), 0.0);
  EXPECT_DOUBLE_EQ(s.p95(), 0.0);
  EXPECT_DOUBLE_EQ(s.p99(), 0.0);
}

TEST(Quantiles, SingleSampleIsEveryQuantile) {
  RunningStat s;
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 42.0);
  EXPECT_DOUBLE_EQ(s.p50(), 42.0);
  EXPECT_DOUBLE_EQ(s.p99(), 42.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 42.0);
}

TEST(Quantiles, ConstantSeries) {
  RunningStat s;
  for (int i = 0; i < 1000; ++i) s.add(7.0);
  EXPECT_DOUBLE_EQ(s.p50(), 7.0);
  EXPECT_DOUBLE_EQ(s.p95(), 7.0);
  EXPECT_DOUBLE_EQ(s.p99(), 7.0);
}

TEST(Quantiles, UniformSeriesWithinReservoirIsExact) {
  // 101 samples fit in the 512-slot reservoir, so quantiles interpolate the
  // exact order statistics of 0..100.
  RunningStat s;
  for (int i = 0; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.p50(), 50.0);
  EXPECT_DOUBLE_EQ(s.p95(), 95.0);
  EXPECT_DOUBLE_EQ(s.p99(), 99.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 100.0);
}

TEST(Quantiles, LargeStreamApproximatesUniform) {
  // 50k samples overflow the reservoir; Algorithm R keeps a uniform sample,
  // so the quantile estimates land near the true values.
  RunningStat s;
  for (int i = 0; i < 50000; ++i) s.add(static_cast<double>(i % 1000));
  EXPECT_NEAR(s.p50(), 500.0, 100.0);
  EXPECT_NEAR(s.p95(), 950.0, 60.0);
  EXPECT_GT(s.p99(), s.p50());
}

TEST(Quantiles, OutOfRangeArgumentRejected) {
  RunningStat s;
  s.add(1.0);
  EXPECT_THROW(s.quantile(-0.1), contract_error);
  EXPECT_THROW(s.quantile(1.1), contract_error);
}

TEST(QuantileReservoir, CountTracksStreamSampleIsBounded) {
  QuantileReservoir r(16);
  for (int i = 0; i < 100; ++i) r.add(static_cast<double>(i));
  EXPECT_EQ(r.count(), 100u);
  EXPECT_EQ(r.sample_size(), 16u);
}

TEST(QuantileReservoir, DeterministicAcrossRuns) {
  QuantileReservoir a(32), b(32);
  for (int i = 0; i < 1000; ++i) {
    a.add(static_cast<double>(i));
    b.add(static_cast<double>(i));
  }
  EXPECT_DOUBLE_EQ(a.quantile(0.5), b.quantile(0.5));
  EXPECT_DOUBLE_EQ(a.quantile(0.95), b.quantile(0.95));
}

TEST(Pearson, PerfectCorrelation) {
  const std::vector<double> x{1, 2, 3, 4};
  const std::vector<double> y{10, 20, 30, 40};
  EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
  const std::vector<double> yn{40, 30, 20, 10};
  EXPECT_NEAR(pearson(x, yn), -1.0, 1e-12);
}

TEST(Pearson, ConstantSeriesGivesZero) {
  const std::vector<double> x{1, 2, 3};
  const std::vector<double> c{5, 5, 5};
  EXPECT_DOUBLE_EQ(pearson(x, c), 0.0);
  EXPECT_DOUBLE_EQ(pearson(std::vector<double>{}, std::vector<double>{}), 0.0);
}

TEST(Pearson, LengthMismatchRejected) {
  const std::vector<double> x{1, 2};
  const std::vector<double> y{1};
  EXPECT_THROW(pearson(x, y), contract_error);
}

TEST(MeanOf, Basics) {
  EXPECT_DOUBLE_EQ(mean_of(std::vector<double>{}), 0.0);
  EXPECT_DOUBLE_EQ(mean_of(std::vector<double>{2, 4, 6}), 4.0);
}

}  // namespace
}  // namespace sysrle
