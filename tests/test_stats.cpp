// Tests for the statistics helpers.

#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/assert.hpp"

namespace sysrle {
namespace {

TEST(RunningStat, EmptyIsZero) {
  const RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(RunningStat, SingleValue) {
  RunningStat s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(RunningStat, KnownMoments) {
  RunningStat s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(Pearson, PerfectCorrelation) {
  const std::vector<double> x{1, 2, 3, 4};
  const std::vector<double> y{10, 20, 30, 40};
  EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
  const std::vector<double> yn{40, 30, 20, 10};
  EXPECT_NEAR(pearson(x, yn), -1.0, 1e-12);
}

TEST(Pearson, ConstantSeriesGivesZero) {
  const std::vector<double> x{1, 2, 3};
  const std::vector<double> c{5, 5, 5};
  EXPECT_DOUBLE_EQ(pearson(x, c), 0.0);
  EXPECT_DOUBLE_EQ(pearson(std::vector<double>{}, std::vector<double>{}), 0.0);
}

TEST(Pearson, LengthMismatchRejected) {
  const std::vector<double> x{1, 2};
  const std::vector<double> y{1};
  EXPECT_THROW(pearson(x, y), contract_error);
}

TEST(MeanOf, Basics) {
  EXPECT_DOUBLE_EQ(mean_of(std::vector<double>{}), 0.0);
  EXPECT_DOUBLE_EQ(mean_of(std::vector<double>{2, 4, 6}), 4.0);
}

}  // namespace
}  // namespace sysrle
