// Tests for the streaming (line-scan) diff API.

#include "core/stream_diff.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "core/systolic_diff.hpp"
#include "rle/ops.hpp"
#include "telemetry/telemetry.hpp"
#include "workload/generator.hpp"
#include "workload/rng.hpp"

namespace sysrle {
namespace {

struct Captured {
  pos_t y;
  RleRow diff;
};

TEST(StreamDiff, RowsArriveInOrderWithCorrectDiffs) {
  Rng rng(1201);
  RowGenParams p;
  p.width = 800;
  std::vector<Captured> captured;
  ImageDiffOptions opts;
  opts.canonicalize_output = true;
  StreamDiffer differ(opts, [&](pos_t y, const RleRow& d) {
    captured.push_back({y, d});
  });

  std::vector<RleRow> refs, scans;
  for (int i = 0; i < 20; ++i) {
    ErrorGenParams ep;
    ep.error_fraction = 0.03;
    const RowPairSample s = generate_pair(rng, p, ep);
    refs.push_back(s.first);
    scans.push_back(s.second);
    differ.push_row(s.first, s.second);
  }

  ASSERT_EQ(captured.size(), 20u);
  for (std::size_t i = 0; i < captured.size(); ++i) {
    EXPECT_EQ(captured[i].y, static_cast<pos_t>(i));
    EXPECT_EQ(captured[i].diff, xor_rows(refs[i], scans[i])) << "row " << i;
  }
}

TEST(StreamDiff, SummaryAggregates) {
  Rng rng(1202);
  RowGenParams p;
  p.width = 600;
  len_t expected_pixels = 0;
  StreamDiffer differ(ImageDiffOptions{},
                      [](pos_t, const RleRow&) {});
  for (int i = 0; i < 10; ++i) {
    ErrorGenParams ep;
    ep.error_fraction = 0.02;
    const RowPairSample s = generate_pair(rng, p, ep);
    expected_pixels += hamming_distance(s.first, s.second);
    differ.push_row(s.first, s.second);
  }
  const StreamSummary& sum = differ.finish();
  EXPECT_EQ(sum.rows, 10u);
  EXPECT_EQ(sum.difference_pixels, expected_pixels);
  EXPECT_GT(sum.counters.iterations, 0u);
  EXPECT_GE(sum.counters.iterations, sum.max_row_iterations);
}

TEST(StreamDiff, PipelinedCyclesDominatedByLoadOnSimilarRows) {
  // On near-identical rows iterations are tiny, so the double-buffered
  // machine is load-bound: pipelined cycles ~ sum of run counts.
  Rng rng(1203);
  RowGenParams p;
  p.width = 2000;
  StreamDiffer differ(ImageDiffOptions{}, [](pos_t, const RleRow&) {});
  cycle_t expected_load = 0;
  for (int i = 0; i < 5; ++i) {
    const RleRow row = generate_row(rng, p);
    expected_load += 2 * row.run_count();
    differ.push_row(row, row);
  }
  EXPECT_EQ(differ.finish().pipelined_cycles, expected_load);
}

TEST(StreamDiff, EnginesAgreeRowByRow) {
  Rng rng(1204);
  RowGenParams p;
  p.width = 500;
  ErrorGenParams ep;
  ep.error_fraction = 0.10;
  std::vector<RowPairSample> pairs;
  for (int i = 0; i < 8; ++i) pairs.push_back(generate_pair(rng, p, ep));

  std::vector<std::vector<RleRow>> results;
  for (const DiffEngine engine :
       {DiffEngine::kSystolic, DiffEngine::kBusSystolic,
        DiffEngine::kSequentialMerge, DiffEngine::kParitySweep,
        DiffEngine::kAdaptive}) {
    ImageDiffOptions opts;
    opts.engine = engine;
    opts.canonicalize_output = true;
    std::vector<RleRow> rows;
    StreamDiffer differ(opts, [&rows](pos_t, const RleRow& d) {
      rows.push_back(d);
    });
    for (const auto& pr : pairs) differ.push_row(pr.first, pr.second);
    results.push_back(std::move(rows));
  }
  for (std::size_t e = 1; e < results.size(); ++e)
    EXPECT_EQ(results[e], results[0]) << "engine " << e;
}

TEST(StreamDiff, AdaptiveEngineRoutesPerRowAndAccountsBothWays) {
  // One similar pair (machine) and one empty-vs-busy pair (merge): the
  // stream must run both engines and account each in its own column.
  ImageDiffOptions opts;
  opts.engine = DiffEngine::kAdaptive;
  StreamDiffer differ(opts, [](pos_t, const RleRow&) {});
  const RleRow similar_a{{10, 3}, {16, 2}};
  const RleRow similar_b{{10, 3}, {20, 2}};
  differ.push_row(similar_a, similar_b);
  const RleRow busy{{0, 2}, {4, 2}, {8, 2}, {12, 2}, {16, 2}, {20, 2}};
  differ.push_row(RleRow{}, busy);
  const StreamSummary& s = differ.finish();
  EXPECT_EQ(s.rows, 2u);
  EXPECT_GT(s.counters.iterations, 0u);    // row 0 took the machine
  EXPECT_GT(s.sequential_iterations, 0u);  // row 1 took the merge
}

TEST(StreamDiff, NullCallbackRejected) {
  EXPECT_THROW(StreamDiffer(ImageDiffOptions{}, nullptr), contract_error);
}

TEST(StreamDiff, EngineFailureFallsBackAndReportsError) {
  // A throwing engine (simulating a machine defect caught by a checker)
  // must not stall the stream: the error callback fires and the row is
  // recomputed on the sequential fallback, still correct and in order.
  Rng rng(1205);
  RowGenParams p;
  p.width = 400;
  std::vector<Captured> captured;
  std::vector<std::pair<pos_t, std::string>> errors;
  ImageDiffOptions opts;
  opts.canonicalize_output = true;
  StreamDiffer differ(opts, [&](pos_t y, const RleRow& d) {
    captured.push_back({y, d});
  });
  differ.set_error_callback([&](pos_t y, const std::string& m) {
    errors.emplace_back(y, m);
  });
  int calls = 0;
  differ.set_engine_override(
      [&calls](const RleRow& a, const RleRow& b, SystolicCounters& c) {
        if (++calls == 2) throw contract_error("injected engine failure");
        SystolicResult r = systolic_xor(a, b);
        c = r.counters;
        return std::move(r.output);
      });

  std::vector<RowPairSample> pairs;
  for (int i = 0; i < 3; ++i) {
    ErrorGenParams ep;
    ep.error_fraction = 0.05;
    pairs.push_back(generate_pair(rng, p, ep));
    differ.push_row(pairs.back().first, pairs.back().second);
  }

  const StreamSummary& sum = differ.finish();
  EXPECT_EQ(sum.rows, 3u);
  EXPECT_EQ(sum.fallback_rows, 1u);
  EXPECT_EQ(sum.poisoned_rows, 0u);
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_EQ(errors[0].first, 1);
  EXPECT_NE(errors[0].second.find("injected engine failure"),
            std::string::npos);
  ASSERT_EQ(captured.size(), 3u);
  for (std::size_t i = 0; i < captured.size(); ++i)
    EXPECT_EQ(captured[i].diff, xor_rows(pairs[i].first, pairs[i].second))
        << "row " << i;
}

TEST(StreamDiff, InvalidRunsDegradeToPoisonedRowAndStreamContinues) {
  std::vector<Captured> captured;
  std::vector<std::pair<pos_t, std::string>> errors;
  StreamDiffer differ(ImageDiffOptions{}, [&](pos_t y, const RleRow& d) {
    captured.push_back({y, d});
  });
  differ.set_error_callback([&](pos_t y, const std::string& m) {
    errors.emplace_back(y, m);
  });

  differ.push_row_runs({{0, 3}, {10, 2}}, {{5, -1}});  // negative length
  differ.push_row_runs({{0, 5}, {3, 2}}, {});          // overlapping reference
  differ.push_row_runs({{2, 2}}, {{3, 4}});            // valid pair

  const StreamSummary& sum = differ.finish();
  EXPECT_EQ(sum.rows, 3u);
  EXPECT_EQ(sum.poisoned_rows, 2u);
  EXPECT_EQ(sum.fallback_rows, 0u);
  ASSERT_EQ(errors.size(), 2u);
  EXPECT_EQ(errors[0].first, 0);
  EXPECT_NE(errors[0].second.find("scan"), std::string::npos);
  EXPECT_EQ(errors[1].first, 1);
  EXPECT_NE(errors[1].second.find("reference"), std::string::npos);
  ASSERT_EQ(captured.size(), 3u);
  EXPECT_TRUE(captured[0].diff.empty());
  EXPECT_TRUE(captured[1].diff.empty());
  EXPECT_EQ(captured[2].diff,
            xor_rows(RleRow{{2, 2}}, RleRow{{3, 4}}));
}

TEST(StreamDiff, ErrorCallbackIsOptional) {
  // No error callback installed: failures are still absorbed silently.
  std::size_t rows_seen = 0;
  StreamDiffer differ(ImageDiffOptions{},
                      [&](pos_t, const RleRow&) { ++rows_seen; });
  differ.set_engine_override(
      [](const RleRow&, const RleRow&, SystolicCounters&) -> RleRow {
        throw contract_error("always broken");
      });
  differ.push_row(RleRow{{0, 4}}, RleRow{{2, 4}});
  differ.push_row_runs({{4, -7}}, {});
  EXPECT_EQ(rows_seen, 2u);
  EXPECT_EQ(differ.finish().fallback_rows, 1u);
  EXPECT_EQ(differ.finish().poisoned_rows, 1u);
}

TEST(StreamDiff, ClearingEngineOverrideRestoresConfiguredEngine) {
  std::vector<Captured> captured;
  StreamDiffer differ(ImageDiffOptions{}, [&](pos_t y, const RleRow& d) {
    captured.push_back({y, d});
  });
  differ.set_engine_override(
      [](const RleRow&, const RleRow&, SystolicCounters&) -> RleRow {
        throw contract_error("broken");
      });
  differ.push_row(RleRow{{0, 2}}, RleRow{{4, 2}});
  differ.set_engine_override(nullptr);
  differ.push_row(RleRow{{0, 2}}, RleRow{{4, 2}});
  EXPECT_EQ(differ.finish().fallback_rows, 1u);  // only the first row
  ASSERT_EQ(captured.size(), 2u);
  EXPECT_EQ(captured[0].diff.canonical(), captured[1].diff.canonical());
}

TEST(StreamDiff, ExpiredDeadlineRefusesRowsBeforeTheEngine) {
  // The deadline-propagation contract: once expired, push_row returns false
  // without invoking the engine and without firing the row callback.
  std::vector<Captured> captured;
  std::uint64_t engine_calls = 0;
  bool expired = false;
  StreamDiffer differ(ImageDiffOptions{}, [&](pos_t y, const RleRow& d) {
    captured.push_back({y, d});
  });
  differ.set_engine_override(
      [&](const RleRow& a, const RleRow& b, SystolicCounters&) {
        ++engine_calls;
        return xor_rows(a, b);
      });
  differ.set_deadline([&] { return expired; });

  EXPECT_TRUE(differ.push_row(RleRow{{0, 2}}, RleRow{{4, 2}}));
  EXPECT_TRUE(differ.push_row(RleRow{{1, 3}}, RleRow{{6, 1}}));
  expired = true;
  EXPECT_FALSE(differ.push_row(RleRow{{0, 2}}, RleRow{{4, 2}}));
  EXPECT_FALSE(differ.push_row_runs({{0, 2}}, {{4, 2}}));

  const StreamSummary& sum = differ.finish();
  EXPECT_EQ(sum.rows, 2u);
  EXPECT_EQ(sum.expired_rows, 2u);
  EXPECT_EQ(engine_calls, 2u);  // never invoked after expiry
  EXPECT_EQ(captured.size(), 2u);

  // Clearing the deadline (or it un-expiring) resumes the stream.
  expired = false;
  EXPECT_TRUE(differ.push_row(RleRow{{0, 2}}, RleRow{{4, 2}}));
  EXPECT_EQ(differ.finish().rows, 3u);
  EXPECT_EQ(engine_calls, 3u);
}

TEST(StreamDiff, GaugesStayBalancedAcrossErrorAndFallbackPaths) {
  // Pin for the gauge-balance fix: the queue-depth gauge must end at the
  // last row's true load — 0 for a poisoned row, not the previous row's
  // leftover — and the throughput gauge must be set on every path.
  reset_telemetry();
  set_telemetry_enabled(true);
  {
    StreamDiffer differ(ImageDiffOptions{}, [](pos_t, const RleRow&) {});
    // Normal row: gauge holds its 2+1 runs.
    differ.push_row(RleRow{{0, 2}, {5, 1}}, RleRow{{9, 3}});
    EXPECT_EQ(global_metrics().snapshot().gauge("stream.queue_depth_runs",
                                                -1.0),
              3.0);

    // Fallback row (engine throws): counters tick, gauge still tracks the
    // row's real load.
    differ.set_engine_override(
        [](const RleRow&, const RleRow&, SystolicCounters&) -> RleRow {
          throw contract_error("broken engine");
        });
    differ.push_row(RleRow{{0, 4}}, RleRow{{6, 2}});
    differ.set_engine_override(nullptr);
    MetricsSnapshot snap = global_metrics().snapshot();
    EXPECT_EQ(snap.counter("stream.fallback_rows"), 1u);
    EXPECT_EQ(snap.gauge("stream.queue_depth_runs", -1.0), 2.0);

    // Poisoned row: zero runs enter the machine, so the gauge returns to
    // baseline instead of advertising phantom queued work.
    differ.push_row_runs({{5, 2}, {0, 2}}, {{1, 1}});
    snap = global_metrics().snapshot();
    EXPECT_EQ(snap.counter("stream.poisoned_rows"), 1u);
    EXPECT_EQ(snap.gauge("stream.queue_depth_runs", -1.0), 0.0);
    EXPECT_GT(snap.gauge("stream.rows_per_sec", -1.0), 0.0);
    EXPECT_EQ(snap.counter("stream.rows"), 3u);
  }
  set_telemetry_enabled(false);
  reset_telemetry();
}

TEST(StreamDiff, AdversarialRunListsNeverThrowAndAreAccountedExactly) {
  // Hostile input sweep for the untrusted entry point.  Every malformed list
  // degrades to one empty diff row — never an exception, never a stall —
  // and poisoned_rows counts exactly the malformed pushes.
  constexpr len_t kMax = std::numeric_limits<len_t>::max();
  std::vector<Captured> captured;
  std::vector<pos_t> error_rows;
  StreamDiffer differ(ImageDiffOptions{}, [&](pos_t y, const RleRow& d) {
    captured.push_back({y, d});
  });
  differ.set_error_callback(
      [&](pos_t y, const std::string& diagnostic) {
        EXPECT_FALSE(diagnostic.empty());
        error_rows.push_back(y);
      });

  struct Case {
    std::vector<sysrle::Run> reference;
    std::vector<sysrle::Run> scan;
    bool poisoned;
  };
  const std::vector<Case> cases = {
      // Overlapping runs in the reference.
      {{{0, 5}, {3, 4}}, {{10, 2}}, true},
      // Reversed (descending start) order in the scan.
      {{{0, 2}}, {{9, 2}, {4, 2}}, true},
      // end < start: non-positive length.
      {{{4, 0}}, {{0, 1}}, true},
      {{{4, -3}}, {{0, 1}}, true},
      // Equal starts (not strictly increasing).
      {{{7, 1}, {7, 2}}, {{0, 1}}, true},
      // A healthy pair interleaved: the stream must keep flowing.
      {{{0, 4}}, {{2, 4}}, false},
      // Near-len_t-max run: arithmetic on the closed interval must not
      // overflow, and per-run (not per-pixel) cost means it processes fine.
      {{{0, kMax - 2}}, {{1, 1}}, false},
      // Both sides malformed still costs exactly one poisoned row.
      {{{5, 2}, {1, 1}}, {{8, 0}}, true},
  };

  std::uint64_t expected_poisoned = 0;
  for (const Case& c : cases) {
    EXPECT_TRUE(differ.push_row_runs(c.reference, c.scan));
    if (c.poisoned) ++expected_poisoned;
  }

  const StreamSummary& sum = differ.finish();
  EXPECT_EQ(sum.rows, cases.size());
  EXPECT_EQ(sum.poisoned_rows, expected_poisoned);
  EXPECT_EQ(sum.fallback_rows, 0u);
  EXPECT_EQ(error_rows.size(), expected_poisoned);

  // on_row fired exactly once per push, in order, empty iff poisoned.
  ASSERT_EQ(captured.size(), cases.size());
  for (std::size_t i = 0; i < cases.size(); ++i) {
    EXPECT_EQ(captured[i].y, static_cast<pos_t>(i));
    EXPECT_EQ(captured[i].diff.empty(), cases[i].poisoned) << "row " << i;
  }
  // The healthy rows carry the true XOR.
  EXPECT_EQ(captured[5].diff.canonical(),
            xor_rows(RleRow{{0, 4}}, RleRow{{2, 4}}).canonical());
}

}  // namespace
}  // namespace sysrle
