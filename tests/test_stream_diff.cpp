// Tests for the streaming (line-scan) diff API.

#include "core/stream_diff.hpp"

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "core/systolic_diff.hpp"
#include "rle/ops.hpp"
#include "workload/generator.hpp"
#include "workload/rng.hpp"

namespace sysrle {
namespace {

struct Captured {
  pos_t y;
  RleRow diff;
};

TEST(StreamDiff, RowsArriveInOrderWithCorrectDiffs) {
  Rng rng(1201);
  RowGenParams p;
  p.width = 800;
  std::vector<Captured> captured;
  ImageDiffOptions opts;
  opts.canonicalize_output = true;
  StreamDiffer differ(opts, [&](pos_t y, const RleRow& d) {
    captured.push_back({y, d});
  });

  std::vector<RleRow> refs, scans;
  for (int i = 0; i < 20; ++i) {
    ErrorGenParams ep;
    ep.error_fraction = 0.03;
    const RowPairSample s = generate_pair(rng, p, ep);
    refs.push_back(s.first);
    scans.push_back(s.second);
    differ.push_row(s.first, s.second);
  }

  ASSERT_EQ(captured.size(), 20u);
  for (std::size_t i = 0; i < captured.size(); ++i) {
    EXPECT_EQ(captured[i].y, static_cast<pos_t>(i));
    EXPECT_EQ(captured[i].diff, xor_rows(refs[i], scans[i])) << "row " << i;
  }
}

TEST(StreamDiff, SummaryAggregates) {
  Rng rng(1202);
  RowGenParams p;
  p.width = 600;
  len_t expected_pixels = 0;
  StreamDiffer differ(ImageDiffOptions{},
                      [](pos_t, const RleRow&) {});
  for (int i = 0; i < 10; ++i) {
    ErrorGenParams ep;
    ep.error_fraction = 0.02;
    const RowPairSample s = generate_pair(rng, p, ep);
    expected_pixels += hamming_distance(s.first, s.second);
    differ.push_row(s.first, s.second);
  }
  const StreamSummary& sum = differ.finish();
  EXPECT_EQ(sum.rows, 10u);
  EXPECT_EQ(sum.difference_pixels, expected_pixels);
  EXPECT_GT(sum.counters.iterations, 0u);
  EXPECT_GE(sum.counters.iterations, sum.max_row_iterations);
}

TEST(StreamDiff, PipelinedCyclesDominatedByLoadOnSimilarRows) {
  // On near-identical rows iterations are tiny, so the double-buffered
  // machine is load-bound: pipelined cycles ~ sum of run counts.
  Rng rng(1203);
  RowGenParams p;
  p.width = 2000;
  StreamDiffer differ(ImageDiffOptions{}, [](pos_t, const RleRow&) {});
  cycle_t expected_load = 0;
  for (int i = 0; i < 5; ++i) {
    const RleRow row = generate_row(rng, p);
    expected_load += 2 * row.run_count();
    differ.push_row(row, row);
  }
  EXPECT_EQ(differ.finish().pipelined_cycles, expected_load);
}

TEST(StreamDiff, EnginesAgreeRowByRow) {
  Rng rng(1204);
  RowGenParams p;
  p.width = 500;
  ErrorGenParams ep;
  ep.error_fraction = 0.10;
  std::vector<RowPairSample> pairs;
  for (int i = 0; i < 8; ++i) pairs.push_back(generate_pair(rng, p, ep));

  std::vector<std::vector<RleRow>> results;
  for (const DiffEngine engine :
       {DiffEngine::kSystolic, DiffEngine::kBusSystolic,
        DiffEngine::kSequentialMerge, DiffEngine::kParitySweep}) {
    ImageDiffOptions opts;
    opts.engine = engine;
    opts.canonicalize_output = true;
    std::vector<RleRow> rows;
    StreamDiffer differ(opts, [&rows](pos_t, const RleRow& d) {
      rows.push_back(d);
    });
    for (const auto& pr : pairs) differ.push_row(pr.first, pr.second);
    results.push_back(std::move(rows));
  }
  for (std::size_t e = 1; e < results.size(); ++e)
    EXPECT_EQ(results[e], results[0]) << "engine " << e;
}

TEST(StreamDiff, NullCallbackRejected) {
  EXPECT_THROW(StreamDiffer(ImageDiffOptions{}, nullptr), contract_error);
}

TEST(StreamDiff, EngineFailureFallsBackAndReportsError) {
  // A throwing engine (simulating a machine defect caught by a checker)
  // must not stall the stream: the error callback fires and the row is
  // recomputed on the sequential fallback, still correct and in order.
  Rng rng(1205);
  RowGenParams p;
  p.width = 400;
  std::vector<Captured> captured;
  std::vector<std::pair<pos_t, std::string>> errors;
  ImageDiffOptions opts;
  opts.canonicalize_output = true;
  StreamDiffer differ(opts, [&](pos_t y, const RleRow& d) {
    captured.push_back({y, d});
  });
  differ.set_error_callback([&](pos_t y, const std::string& m) {
    errors.emplace_back(y, m);
  });
  int calls = 0;
  differ.set_engine_override(
      [&calls](const RleRow& a, const RleRow& b, SystolicCounters& c) {
        if (++calls == 2) throw contract_error("injected engine failure");
        SystolicResult r = systolic_xor(a, b);
        c = r.counters;
        return std::move(r.output);
      });

  std::vector<RowPairSample> pairs;
  for (int i = 0; i < 3; ++i) {
    ErrorGenParams ep;
    ep.error_fraction = 0.05;
    pairs.push_back(generate_pair(rng, p, ep));
    differ.push_row(pairs.back().first, pairs.back().second);
  }

  const StreamSummary& sum = differ.finish();
  EXPECT_EQ(sum.rows, 3u);
  EXPECT_EQ(sum.fallback_rows, 1u);
  EXPECT_EQ(sum.poisoned_rows, 0u);
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_EQ(errors[0].first, 1);
  EXPECT_NE(errors[0].second.find("injected engine failure"),
            std::string::npos);
  ASSERT_EQ(captured.size(), 3u);
  for (std::size_t i = 0; i < captured.size(); ++i)
    EXPECT_EQ(captured[i].diff, xor_rows(pairs[i].first, pairs[i].second))
        << "row " << i;
}

TEST(StreamDiff, InvalidRunsDegradeToPoisonedRowAndStreamContinues) {
  std::vector<Captured> captured;
  std::vector<std::pair<pos_t, std::string>> errors;
  StreamDiffer differ(ImageDiffOptions{}, [&](pos_t y, const RleRow& d) {
    captured.push_back({y, d});
  });
  differ.set_error_callback([&](pos_t y, const std::string& m) {
    errors.emplace_back(y, m);
  });

  differ.push_row_runs({{0, 3}, {10, 2}}, {{5, -1}});  // negative length
  differ.push_row_runs({{0, 5}, {3, 2}}, {});          // overlapping reference
  differ.push_row_runs({{2, 2}}, {{3, 4}});            // valid pair

  const StreamSummary& sum = differ.finish();
  EXPECT_EQ(sum.rows, 3u);
  EXPECT_EQ(sum.poisoned_rows, 2u);
  EXPECT_EQ(sum.fallback_rows, 0u);
  ASSERT_EQ(errors.size(), 2u);
  EXPECT_EQ(errors[0].first, 0);
  EXPECT_NE(errors[0].second.find("scan"), std::string::npos);
  EXPECT_EQ(errors[1].first, 1);
  EXPECT_NE(errors[1].second.find("reference"), std::string::npos);
  ASSERT_EQ(captured.size(), 3u);
  EXPECT_TRUE(captured[0].diff.empty());
  EXPECT_TRUE(captured[1].diff.empty());
  EXPECT_EQ(captured[2].diff,
            xor_rows(RleRow{{2, 2}}, RleRow{{3, 4}}));
}

TEST(StreamDiff, ErrorCallbackIsOptional) {
  // No error callback installed: failures are still absorbed silently.
  std::size_t rows_seen = 0;
  StreamDiffer differ(ImageDiffOptions{},
                      [&](pos_t, const RleRow&) { ++rows_seen; });
  differ.set_engine_override(
      [](const RleRow&, const RleRow&, SystolicCounters&) -> RleRow {
        throw contract_error("always broken");
      });
  differ.push_row(RleRow{{0, 4}}, RleRow{{2, 4}});
  differ.push_row_runs({{4, -7}}, {});
  EXPECT_EQ(rows_seen, 2u);
  EXPECT_EQ(differ.finish().fallback_rows, 1u);
  EXPECT_EQ(differ.finish().poisoned_rows, 1u);
}

TEST(StreamDiff, ClearingEngineOverrideRestoresConfiguredEngine) {
  std::vector<Captured> captured;
  StreamDiffer differ(ImageDiffOptions{}, [&](pos_t y, const RleRow& d) {
    captured.push_back({y, d});
  });
  differ.set_engine_override(
      [](const RleRow&, const RleRow&, SystolicCounters&) -> RleRow {
        throw contract_error("broken");
      });
  differ.push_row(RleRow{{0, 2}}, RleRow{{4, 2}});
  differ.set_engine_override(nullptr);
  differ.push_row(RleRow{{0, 2}}, RleRow{{4, 2}});
  EXPECT_EQ(differ.finish().fallback_rows, 1u);  // only the first row
  ASSERT_EQ(captured.size(), 2u);
  EXPECT_EQ(captured[0].diff.canonical(), captured[1].diff.canonical());
}

}  // namespace
}  // namespace sysrle
