// Tests for the streaming (line-scan) diff API.

#include "core/stream_diff.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/assert.hpp"
#include "rle/ops.hpp"
#include "workload/generator.hpp"
#include "workload/rng.hpp"

namespace sysrle {
namespace {

struct Captured {
  pos_t y;
  RleRow diff;
};

TEST(StreamDiff, RowsArriveInOrderWithCorrectDiffs) {
  Rng rng(1201);
  RowGenParams p;
  p.width = 800;
  std::vector<Captured> captured;
  ImageDiffOptions opts;
  opts.canonicalize_output = true;
  StreamDiffer differ(opts, [&](pos_t y, const RleRow& d) {
    captured.push_back({y, d});
  });

  std::vector<RleRow> refs, scans;
  for (int i = 0; i < 20; ++i) {
    ErrorGenParams ep;
    ep.error_fraction = 0.03;
    const RowPairSample s = generate_pair(rng, p, ep);
    refs.push_back(s.first);
    scans.push_back(s.second);
    differ.push_row(s.first, s.second);
  }

  ASSERT_EQ(captured.size(), 20u);
  for (std::size_t i = 0; i < captured.size(); ++i) {
    EXPECT_EQ(captured[i].y, static_cast<pos_t>(i));
    EXPECT_EQ(captured[i].diff, xor_rows(refs[i], scans[i])) << "row " << i;
  }
}

TEST(StreamDiff, SummaryAggregates) {
  Rng rng(1202);
  RowGenParams p;
  p.width = 600;
  len_t expected_pixels = 0;
  StreamDiffer differ(ImageDiffOptions{},
                      [](pos_t, const RleRow&) {});
  for (int i = 0; i < 10; ++i) {
    ErrorGenParams ep;
    ep.error_fraction = 0.02;
    const RowPairSample s = generate_pair(rng, p, ep);
    expected_pixels += hamming_distance(s.first, s.second);
    differ.push_row(s.first, s.second);
  }
  const StreamSummary& sum = differ.finish();
  EXPECT_EQ(sum.rows, 10u);
  EXPECT_EQ(sum.difference_pixels, expected_pixels);
  EXPECT_GT(sum.counters.iterations, 0u);
  EXPECT_GE(sum.counters.iterations, sum.max_row_iterations);
}

TEST(StreamDiff, PipelinedCyclesDominatedByLoadOnSimilarRows) {
  // On near-identical rows iterations are tiny, so the double-buffered
  // machine is load-bound: pipelined cycles ~ sum of run counts.
  Rng rng(1203);
  RowGenParams p;
  p.width = 2000;
  StreamDiffer differ(ImageDiffOptions{}, [](pos_t, const RleRow&) {});
  cycle_t expected_load = 0;
  for (int i = 0; i < 5; ++i) {
    const RleRow row = generate_row(rng, p);
    expected_load += 2 * row.run_count();
    differ.push_row(row, row);
  }
  EXPECT_EQ(differ.finish().pipelined_cycles, expected_load);
}

TEST(StreamDiff, EnginesAgreeRowByRow) {
  Rng rng(1204);
  RowGenParams p;
  p.width = 500;
  ErrorGenParams ep;
  ep.error_fraction = 0.10;
  std::vector<RowPairSample> pairs;
  for (int i = 0; i < 8; ++i) pairs.push_back(generate_pair(rng, p, ep));

  std::vector<std::vector<RleRow>> results;
  for (const DiffEngine engine :
       {DiffEngine::kSystolic, DiffEngine::kBusSystolic,
        DiffEngine::kSequentialMerge, DiffEngine::kParitySweep}) {
    ImageDiffOptions opts;
    opts.engine = engine;
    opts.canonicalize_output = true;
    std::vector<RleRow> rows;
    StreamDiffer differ(opts, [&rows](pos_t, const RleRow& d) {
      rows.push_back(d);
    });
    for (const auto& pr : pairs) differ.push_row(pr.first, pr.second);
    results.push_back(std::move(rows));
  }
  for (std::size_t e = 1; e < results.size(); ++e)
    EXPECT_EQ(results[e], results[0]) << "engine " << e;
}

TEST(StreamDiff, NullCallbackRejected) {
  EXPECT_THROW(StreamDiffer(ImageDiffOptions{}, nullptr), contract_error);
}

}  // namespace
}  // namespace sysrle
