// Tests for the systolic image-difference machine, anchored on the paper's
// published example (Figures 1 and 3) and cross-checked against independent
// reference implementations on random inputs.

#include "core/systolic_diff.hpp"

#include <gtest/gtest.h>

#include "common/assert.hpp"
#include "rle/ops.hpp"
#include "test_util.hpp"
#include "workload/rng.hpp"

namespace sysrle {
namespace {

using sysrle::testing::random_row;
using sysrle::testing::reference_xor;

// The paper's Figure 1 input pair and expected difference.
const RleRow kImg1{{10, 3}, {16, 2}, {23, 2}, {27, 3}};
const RleRow kImg2{{3, 4}, {8, 5}, {15, 5}, {23, 2}, {27, 4}};
const RleRow kExpected{{3, 4}, {8, 2}, {15, 1}, {18, 2}, {30, 1}};

TEST(SystolicDiff, PaperFigure1Output) {
  const SystolicResult r = systolic_xor(kImg1, kImg2);
  EXPECT_EQ(r.output.canonical(), kExpected.canonical());
  // The raw machine output for this input is exactly the published row.
  EXPECT_EQ(r.output, kExpected);
}

TEST(SystolicDiff, PaperFigure3TakesThreeIterations) {
  SystolicConfig cfg;
  cfg.capacity = 6;  // the figure draws Cell0..Cell5
  const SystolicResult r = systolic_xor(kImg1, kImg2, cfg);
  EXPECT_EQ(r.counters.iterations, 3u);
  EXPECT_EQ(r.output, kExpected);
}

TEST(SystolicDiff, PaperFigure3TraceReproduced) {
  TraceRecorder trace;
  SystolicConfig cfg;
  cfg.capacity = 6;
  cfg.trace = &trace;
  systolic_xor(kImg1, kImg2, cfg);

  const std::string rendered = trace.render(false);
  // Key rows of the published trace (Figure 3).
  EXPECT_NE(rendered.find("Initial"), std::string::npos);
  // After step 1.1 the ordered RegSmall lane is (3,4)(8,5)(15,5)(23,2)(27,4).
  EXPECT_NE(rendered.find("(3,4)   (8,5)   (15,5)"), std::string::npos);
  // After step 2.2 the final answer fragments appear: (8,2) (15,1).
  EXPECT_NE(rendered.find("(8,2)"), std::string::npos);
  EXPECT_NE(rendered.find("(15,1)"), std::string::npos);
  EXPECT_NE(rendered.find("(30,1)"), std::string::npos);
  // All three iterations are present.
  EXPECT_NE(rendered.find("1.1"), std::string::npos);
  EXPECT_NE(rendered.find("2.2"), std::string::npos);
  EXPECT_NE(rendered.find("3.1"), std::string::npos);
}

TEST(SystolicDiff, SymmetricInInputOrder) {
  const SystolicResult ab = systolic_xor(kImg1, kImg2);
  const SystolicResult ba = systolic_xor(kImg2, kImg1);
  EXPECT_EQ(ab.output.canonical(), ba.output.canonical());
}

TEST(SystolicDiff, EmptyInputs) {
  EXPECT_TRUE(systolic_xor(RleRow{}, RleRow{}).output.empty());
  EXPECT_EQ(systolic_xor(RleRow{}, RleRow{}).counters.iterations, 0u);
  const SystolicResult only_a = systolic_xor(kImg1, RleRow{});
  EXPECT_EQ(only_a.output, kImg1);
  EXPECT_EQ(only_a.counters.iterations, 0u);  // RegBig lane empty from start
  // Row only in the RegBig lane: one iteration promotes everything.
  const SystolicResult only_b = systolic_xor(RleRow{}, kImg2);
  EXPECT_EQ(only_b.output, kImg2);
  EXPECT_EQ(only_b.counters.iterations, 1u);
}

TEST(SystolicDiff, IdenticalInputsCancelInOneIteration) {
  const SystolicResult r = systolic_xor(kImg2, kImg2);
  EXPECT_TRUE(r.output.empty());
  EXPECT_EQ(r.counters.iterations, 1u);
}

TEST(SystolicDiff, SingleRunPairs) {
  // Overlapping single runs.
  const SystolicResult r = systolic_xor(RleRow{{3, 8}}, RleRow{{5, 12}});
  EXPECT_EQ(r.output.canonical(), xor_rows(RleRow{{3, 8}}, RleRow{{5, 12}}));
  EXPECT_LE(r.counters.iterations, 2u);
}

TEST(SystolicDiff, Theorem1BoundHolds) {
  Rng rng(101);
  for (int trial = 0; trial < 40; ++trial) {
    const pos_t width = rng.uniform(1, 300);
    const RleRow a = random_row(rng, width, rng.uniform01());
    const RleRow b = random_row(rng, width, rng.uniform01());
    const SystolicResult r = systolic_xor(a, b);
    EXPECT_LE(r.counters.iterations, a.run_count() + b.run_count());
  }
}

TEST(SystolicDiff, MatchesReferenceOnRandomInputsWithInvariants) {
  Rng rng(202);
  for (int trial = 0; trial < 60; ++trial) {
    const pos_t width = rng.uniform(1, 250);
    const RleRow a = random_row(rng, width, rng.uniform01());
    const RleRow b = random_row(rng, width, rng.uniform01());
    SystolicConfig cfg;
    cfg.check_invariants = true;  // Theorems 1-3, Corollaries 1.1/2.1 live
    const SystolicResult r = systolic_xor(a, b, cfg);
    EXPECT_EQ(r.output.canonical(), reference_xor(a, b, width))
        << "trial " << trial;
  }
}

TEST(SystolicDiff, ExplicitPaperCapacityTwoK) {
  // The paper sizes the array as 2k cells, k = max runs per input.
  const std::size_t two_k = 2 * std::max(kImg1.run_count(), kImg2.run_count());
  SystolicConfig cfg;
  cfg.capacity = two_k;
  const SystolicResult r = systolic_xor(kImg1, kImg2, cfg);
  EXPECT_EQ(r.output, kExpected);
}

TEST(SystolicDiff, RejectsCapacityBelowInputRuns) {
  SystolicConfig cfg;
  cfg.capacity = 3;  // kImg2 has 5 runs
  EXPECT_THROW(systolic_xor(kImg1, kImg2, cfg), contract_error);
}

TEST(SystolicDiff, CanonicalizeOutputOption) {
  // Construct inputs whose XOR contains adjacent runs: [0,3] and [4,7].
  const RleRow a{{0, 4}};
  const RleRow b{{4, 4}};
  SystolicConfig cfg;
  cfg.canonicalize_output = true;
  const SystolicResult r = systolic_xor(a, b, cfg);
  EXPECT_EQ(r.output, (RleRow{{0, 8}}));
  EXPECT_TRUE(r.output.is_canonical());
}

TEST(SystolicDiff, CountersReflectActivity) {
  const SystolicResult r = systolic_xor(kImg1, kImg2);
  EXPECT_EQ(r.counters.iterations, 3u);
  EXPECT_GE(r.counters.swaps, 1u);       // 1.1 swaps four cells
  EXPECT_GE(r.counters.promotions, 1u);  // cell 4 promotes (27,4)
  EXPECT_GE(r.counters.xors, 1u);
  EXPECT_GE(r.counters.shifts, 1u);
  EXPECT_GE(r.counters.cells_used, 5u);
}

TEST(SystolicDiffMachine, StepwiseDrivingAndTermination) {
  SystolicConfig cfg;
  SystolicDiffMachine m(kImg1, kImg2, cfg);
  EXPECT_FALSE(m.terminated());
  EXPECT_EQ(m.theorem1_bound(), 9u);
  cycle_t steps = 0;
  while (!m.terminated()) {
    m.step();
    ++steps;
    ASSERT_LE(steps, m.theorem1_bound());
  }
  EXPECT_EQ(steps, m.counters().iterations);
  EXPECT_EQ(m.gather_output(), kExpected);
  EXPECT_THROW(m.step(), contract_error);  // stepping past termination
}

TEST(SystolicDiffMachine, RunIsIdempotentAfterTermination) {
  SystolicConfig cfg;
  SystolicDiffMachine m(kImg1, kImg2, cfg);
  m.run();
  EXPECT_EQ(m.run(), 0u);  // already terminated: zero further iterations
}

TEST(SystolicDiff, AdjacentRunsInInputsAreHandled) {
  // Inputs may legally contain adjacent (non-canonical) runs.
  const RleRow a{{0, 3}, {3, 3}};   // [0,2][3,5] adjacent
  const RleRow b{{1, 2}, {10, 2}};
  const SystolicResult r = systolic_xor(a, b);
  EXPECT_EQ(r.output.canonical(), xor_rows(a, b));
}

TEST(SystolicDiffMachine, WorkspaceReuseMatchesFreshMachine) {
  // The row-parallel executor keeps one machine per slot and re-load()s it
  // for every row: recycled cell storage must behave exactly like a freshly
  // constructed machine, including after runs of very different sizes.
  Rng rng(907);
  SystolicDiffMachine workspace;
  const SystolicConfig cfg;
  for (int trial = 0; trial < 50; ++trial) {
    const pos_t width = rng.uniform(1, 400);
    const RleRow a = random_row(rng, width, rng.uniform01());
    const RleRow b = random_row(rng, width, rng.uniform01());
    const SystolicResult fresh = systolic_xor(a, b, cfg);
    const SystolicResult reused = systolic_xor(a, b, cfg, workspace);
    EXPECT_EQ(reused.output, fresh.output) << "trial " << trial;
    EXPECT_EQ(reused.counters.iterations, fresh.counters.iterations)
        << "trial " << trial;
    EXPECT_EQ(reused.counters.cells_used, fresh.counters.cells_used)
        << "trial " << trial;
  }
}

TEST(SystolicDiffMachine, LoadResetsTerminatedState) {
  SystolicDiffMachine m(kImg1, kImg2, {});
  m.run();
  EXPECT_TRUE(m.terminated());
  m.load(kImg1, kImg2, {});
  EXPECT_FALSE(m.terminated());
  m.run();
  EXPECT_EQ(m.gather_output(), kExpected);
}

TEST(SystolicDiff, WideCoordinatesDoNotOverflow) {
  const pos_t big = pos_t{1} << 40;
  const RleRow a{{big, 100}};
  const RleRow b{{big + 50, 100}};
  const SystolicResult r = systolic_xor(a, b);
  EXPECT_EQ(r.output.canonical(),
            (RleRow{{big, 50}, {big + 100, 50}}));
}

}  // namespace
}  // namespace sysrle
