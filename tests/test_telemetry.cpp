// Tests for the telemetry layer: metrics registry, histograms, span tracer,
// the global enable flag, the exporters, and the bench report builder.

#include "telemetry/telemetry.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <thread>
#include <vector>

#include "common/assert.hpp"
#include "core/systolic_diff.hpp"
#include "telemetry/bench_report.hpp"
#include "telemetry/exporters.hpp"
#include "test_util.hpp"

namespace sysrle {
namespace {

using testing::JsonValue;
using testing::parse_json;

/// Every test starts and ends with telemetry disabled and both sinks empty,
/// so ordering between tests cannot leak state.
class TelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_telemetry_enabled(false);
    reset_telemetry();
  }
  void TearDown() override {
    set_telemetry_enabled(false);
    reset_telemetry();
  }
};

// ------------------------------------------------------------------ registry

TEST(MetricsRegistry, CountersAccumulate) {
  MetricsRegistry m;
  EXPECT_TRUE(m.empty());
  m.add("a");
  m.add("a", 4);
  m.add("b", 2);
  const MetricsSnapshot s = m.snapshot();
  EXPECT_EQ(s.counter("a"), 5u);
  EXPECT_EQ(s.counter("b"), 2u);
  EXPECT_EQ(s.counter("missing"), 0u);
  EXPECT_EQ(s.counter("missing", 99), 99u);
}

TEST(MetricsRegistry, GaugesKeepLatestValue) {
  MetricsRegistry m;
  m.set_gauge("g", 1.5);
  m.set_gauge("g", -2.0);
  EXPECT_DOUBLE_EQ(m.snapshot().gauge("g"), -2.0);
  EXPECT_DOUBLE_EQ(m.snapshot().gauge("missing", 7.0), 7.0);
}

TEST(MetricsRegistry, SnapshotIsIsolatedCopy) {
  MetricsRegistry m;
  m.add("c", 1);
  const MetricsSnapshot before = m.snapshot();
  m.add("c", 10);
  EXPECT_EQ(before.counter("c"), 1u);
  EXPECT_EQ(m.snapshot().counter("c"), 11u);
}

TEST(MetricsRegistry, ResetDropsEverything) {
  MetricsRegistry m;
  m.add("c");
  m.set_gauge("g", 1.0);
  m.observe("h", 2.0);
  EXPECT_FALSE(m.empty());
  m.reset();
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.snapshot().histogram("h"), nullptr);
}

TEST(MetricsRegistry, HistogramSpecOnlyMattersOnCreation) {
  MetricsRegistry m;
  HistogramSpec fixed;
  fixed.scale = HistogramSpec::Scale::kFixed;
  fixed.bucket_width = 10.0;
  fixed.bucket_count = 4;
  m.observe("h", 5.0, fixed);
  m.observe("h", 25.0);  // default spec ignored; layout already fixed
  const MetricsSnapshot s = m.snapshot();
  const Histogram* h = s.histogram("h");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->spec().scale, HistogramSpec::Scale::kFixed);
  EXPECT_EQ(h->buckets()[0], 1u);
  EXPECT_EQ(h->buckets()[2], 1u);
}

// ---------------------------------------------------------------- histograms

TEST(Histogram, Log2BucketBoundaries) {
  Histogram h;  // default: log2, 32 buckets
  h.observe(0.5);   // <= 1          -> bucket 0
  h.observe(1.0);   // <= 1          -> bucket 0
  h.observe(2.0);   // (1, 2]        -> bucket 1
  h.observe(3.0);   // (2, 4]        -> bucket 2
  h.observe(4.0);   // (2, 4]        -> bucket 2
  h.observe(1024.0);  //             -> bucket 10
  EXPECT_EQ(h.buckets()[0], 2u);
  EXPECT_EQ(h.buckets()[1], 1u);
  EXPECT_EQ(h.buckets()[2], 2u);
  EXPECT_EQ(h.buckets()[10], 1u);
  EXPECT_DOUBLE_EQ(h.bucket_upper(0), 1.0);
  EXPECT_DOUBLE_EQ(h.bucket_upper(10), 1024.0);
}

TEST(Histogram, OutOfRangeClampsToLastBucket) {
  HistogramSpec spec;
  spec.bucket_count = 4;
  Histogram h(spec);
  h.observe(1e30);
  EXPECT_EQ(h.buckets()[3], 1u);
}

TEST(Histogram, FixedScaleBuckets) {
  HistogramSpec spec;
  spec.scale = HistogramSpec::Scale::kFixed;
  spec.bucket_width = 10.0;
  spec.bucket_count = 4;
  Histogram h(spec);
  h.observe(0.0);
  h.observe(9.9);
  h.observe(25.0);
  h.observe(1e9);  // clamps
  EXPECT_EQ(h.buckets()[0], 2u);
  EXPECT_EQ(h.buckets()[2], 1u);
  EXPECT_EQ(h.buckets()[3], 1u);
  EXPECT_DOUBLE_EQ(h.bucket_upper(1), 20.0);
}

TEST(Histogram, MomentsTrackObservations) {
  Histogram h;
  for (double v : {2.0, 4.0, 6.0}) h.observe(v);
  EXPECT_EQ(h.stat().count(), 3u);
  EXPECT_DOUBLE_EQ(h.stat().mean(), 4.0);
  EXPECT_DOUBLE_EQ(h.stat().min(), 2.0);
  EXPECT_DOUBLE_EQ(h.stat().max(), 6.0);
}

TEST(Histogram, InvalidSpecRejected) {
  HistogramSpec zero_buckets;
  zero_buckets.bucket_count = 0;
  EXPECT_THROW(Histogram{zero_buckets}, contract_error);
  HistogramSpec bad_width;
  bad_width.scale = HistogramSpec::Scale::kFixed;
  bad_width.bucket_width = 0.0;
  EXPECT_THROW(Histogram{bad_width}, contract_error);
}

// ------------------------------------------------------- global flag + sites

TEST_F(TelemetryTest, DisabledByDefaultAndSitesStaySilent) {
  EXPECT_FALSE(telemetry_enabled());
  const RleRow a({{0, 4}, {10, 2}});
  const RleRow b({{2, 4}});
  (void)systolic_xor(a, b);
  EXPECT_TRUE(global_metrics().empty());
  EXPECT_EQ(global_tracer().size(), 0u);
}

TEST_F(TelemetryTest, EnabledSystolicRunRecordsRowMetrics) {
  set_telemetry_enabled(true);
  const RleRow a({{0, 4}, {10, 2}});
  const RleRow b({{2, 4}});
  const SystolicResult r = systolic_xor(a, b);
  const MetricsSnapshot s = global_metrics().snapshot();
  EXPECT_EQ(s.counter("systolic.rows"), 1u);
  const Histogram* iters = s.histogram("systolic.row_iterations");
  ASSERT_NE(iters, nullptr);
  EXPECT_EQ(iters->stat().count(), 1u);
  EXPECT_DOUBLE_EQ(iters->stat().max(),
                   static_cast<double>(r.counters.iterations));
  // Default config keeps raw output, so the Observation-bound check is
  // armed — and the bound holds, so the counter stays zero.
  EXPECT_EQ(s.counter("systolic.obs_bound_violations"), 0u);
}

TEST_F(TelemetryTest, ObservationBoundHoldsOnRawOutput) {
  set_telemetry_enabled(true);
  SystolicConfig cfg;
  cfg.canonicalize_output = false;
  Rng rng(7);
  for (int i = 0; i < 50; ++i) {
    const RleRow a = testing::random_row(rng, 256, 0.3);
    const RleRow b = testing::random_row(rng, 256, 0.3);
    (void)systolic_xor(a, b, cfg);
  }
  const MetricsSnapshot s = global_metrics().snapshot();
  EXPECT_EQ(s.counter("systolic.obs_bound_violations"), 0u);
  EXPECT_EQ(s.counter("systolic.rows"), 50u);
}

TEST_F(TelemetryTest, ResetTelemetryClearsBothSinksKeepsFlag) {
  set_telemetry_enabled(true);
  global_metrics().add("x");
  global_tracer().record("s", "c", 0, 1);
  reset_telemetry();
  EXPECT_TRUE(global_metrics().empty());
  EXPECT_EQ(global_tracer().size(), 0u);
  EXPECT_TRUE(telemetry_enabled());  // reset does not flip the flag
}

// -------------------------------------------------------------------- spans

TEST(SpanTracer, RecordsAndSortsByTimestamp) {
  SpanTracer t;
  t.record("late", "cat", 100, 5);
  t.record("early", "cat", 10, 5);
  t.record("outer", "cat", 10, 50);
  const std::vector<SpanEvent> events = t.snapshot();
  ASSERT_EQ(events.size(), 3u);
  // Equal timestamps: the longer (enclosing) span first.
  EXPECT_STREQ(events[0].name, "outer");
  EXPECT_STREQ(events[1].name, "early");
  EXPECT_STREQ(events[2].name, "late");
}

TEST(SpanTracer, CapacityBoundsBufferAndCountsDrops) {
  SpanTracer t(2);
  t.record("a", "c", 0, 1);
  t.record("b", "c", 1, 1);
  t.record("c", "c", 2, 1);
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(t.dropped(), 1u);
  t.clear();
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.dropped(), 0u);
}

TEST(SpanTracer, NowIsMonotonic) {
  SpanTracer t;
  const std::uint64_t t0 = t.now_us();
  const std::uint64_t t1 = t.now_us();
  EXPECT_LE(t0, t1);
}

TEST_F(TelemetryTest, SpanMacroRecordsOnlyWhenEnabled) {
  {
    TELEMETRY_SPAN("disabled_scope");
  }
  EXPECT_EQ(global_tracer().size(), 0u);
  set_telemetry_enabled(true);
  {
    TELEMETRY_SPAN("enabled_scope", "testcat");
  }
  const std::vector<SpanEvent> events = global_tracer().snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "enabled_scope");
  EXPECT_STREQ(events[0].category, "testcat");
  EXPECT_GE(events[0].tid, 1u);
}

TEST(ThreadOrdinal, StablePerThreadAndDistinctAcrossThreads) {
  const std::uint32_t mine = current_thread_ordinal();
  EXPECT_EQ(current_thread_ordinal(), mine);
  std::uint32_t other = 0;
  std::thread([&other] { other = current_thread_ordinal(); }).join();
  EXPECT_NE(other, mine);
}

// ----------------------------------------------------- thread safety (TSan)

TEST_F(TelemetryTest, ThreadSafetyHammer) {
  // Exercised under -fsanitize=thread in CI: concurrent counter bumps,
  // gauge stores, histogram observations, span records and snapshots.
  set_telemetry_enabled(true);
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 500;
  std::atomic<int> ready{0};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([t, &ready] {
      ready.fetch_add(1);
      while (ready.load() < kThreads) {
      }
      for (int i = 0; i < kOpsPerThread; ++i) {
        global_metrics().add("hammer.count");
        global_metrics().set_gauge("hammer.gauge", static_cast<double>(i));
        global_metrics().observe("hammer.hist", static_cast<double>(i % 64));
        TELEMETRY_SPAN("hammer_span");
        if (i % 128 == 0) {
          (void)global_metrics().snapshot();
          (void)global_tracer().snapshot();
        }
      }
      (void)t;
    });
  }
  for (std::thread& w : workers) w.join();

  const MetricsSnapshot s = global_metrics().snapshot();
  EXPECT_EQ(s.counter("hammer.count"),
            static_cast<std::uint64_t>(kThreads) * kOpsPerThread);
  const Histogram* h = s.histogram("hammer.hist");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->stat().count(),
            static_cast<std::size_t>(kThreads) * kOpsPerThread);
  EXPECT_EQ(global_tracer().size() + global_tracer().dropped(),
            static_cast<std::uint64_t>(kThreads) * kOpsPerThread);
}

// ---------------------------------------------------------------- exporters

TEST_F(TelemetryTest, MetricsJsonExportRoundTrips) {
  MetricsRegistry m;
  m.add("rows", 3);
  m.set_gauge("util", 0.75);
  for (double v : {1.0, 2.0, 3.0, 100.0}) m.observe("iters", v);

  std::ostringstream os;
  write_metrics_json(m.snapshot(), os);
  const JsonValue root = parse_json(os.str());

  EXPECT_EQ(root.at("schema").string, "sysrle.metrics.v1");
  EXPECT_DOUBLE_EQ(root.at("counters").at("rows").number, 3.0);
  EXPECT_DOUBLE_EQ(root.at("gauges").at("util").number, 0.75);
  const JsonValue& h = root.at("histograms").at("iters");
  EXPECT_DOUBLE_EQ(h.at("count").number, 4.0);
  EXPECT_DOUBLE_EQ(h.at("min").number, 1.0);
  EXPECT_DOUBLE_EQ(h.at("max").number, 100.0);
  EXPECT_EQ(h.at("scale").string, "log2");
  // Sparse buckets: only non-empty ones are listed, each with le + count.
  const JsonValue& buckets = h.at("buckets");
  EXPECT_FALSE(buckets.array.empty());
  double total = 0;
  for (const JsonValue& b : buckets.array) total += b.at("count").number;
  EXPECT_DOUBLE_EQ(total, 4.0);
}

TEST_F(TelemetryTest, HistogramExportListsAllBucketBoundaries) {
  MetricsRegistry m;
  HistogramSpec spec;
  spec.scale = HistogramSpec::Scale::kFixed;
  spec.bucket_width = 10.0;
  spec.bucket_count = 4;
  m.observe("lat", 5.0, spec);
  m.observe("lat", 35.0);

  std::ostringstream os;
  write_metrics_json(m.snapshot(), os);
  const JsonValue root = parse_json(os.str());
  const JsonValue& h = root.at("histograms").at("lat");

  // The dense boundaries array names every bucket's upper edge, so a reader
  // can reconstruct the full layout even though "buckets" is sparse.
  const JsonValue& bounds = h.at("boundaries");
  ASSERT_EQ(bounds.array.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_DOUBLE_EQ(bounds.array[i].number, 10.0 * static_cast<double>(i + 1));
  // Every sparse bucket's le appears among the boundaries.
  for (const JsonValue& b : h.at("buckets").array) {
    bool found = false;
    for (const JsonValue& edge : bounds.array)
      if (edge.number == b.at("le").number) found = true;
    EXPECT_TRUE(found) << "le " << b.at("le").number;
  }
}

TEST_F(TelemetryTest, EmptyTracerExportsMetadataOnlyTrace) {
  SpanTracer t;
  std::ostringstream os;
  write_chrome_trace(t, os);
  const JsonValue root = parse_json(os.str());
  ASSERT_EQ(root.at("traceEvents").array.size(), 1u);  // metadata only
  EXPECT_EQ(root.at("traceEvents").array[0].at("ph").string, "M");
  EXPECT_DOUBLE_EQ(root.at("otherData").at("dropped_events").number, 0.0);
}

TEST_F(TelemetryTest, EmptyMetricsExportIsWellFormed) {
  MetricsRegistry m;
  std::ostringstream os;
  write_metrics_json(m.snapshot(), os);
  const JsonValue root = parse_json(os.str());
  EXPECT_EQ(root.at("schema").string, "sysrle.metrics.v1");
  EXPECT_TRUE(root.at("counters").object.empty());
  EXPECT_TRUE(root.at("gauges").object.empty());
  EXPECT_TRUE(root.at("histograms").object.empty());
}

TEST_F(TelemetryTest, ExportersRunConcurrentlyWithRecorders) {
  // Exercised under -fsanitize=thread in CI: snapshot-based exporters must
  // be safe while recording threads are still hot.  A small tracer keeps
  // each export (and its parse) cheap while the hammer runs.
  MetricsRegistry metrics;
  SpanTracer tracer(512);
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&stop, &metrics, &tracer] {
      std::uint64_t i = 0;
      while (!stop.load()) {
        metrics.add("race.count");
        metrics.observe("race.hist", static_cast<double>(i % 32));
        tracer.record_owned("race.span", "test", i, 1);
        ++i;
      }
    });
  }
  for (int round = 0; round < 20; ++round) {
    std::ostringstream metrics_os, trace_os;
    write_metrics_json(metrics.snapshot(), metrics_os);
    write_chrome_trace(tracer, trace_os);
    // Both exports parse mid-hammer.
    (void)parse_json(metrics_os.str());
    (void)parse_json(trace_os.str());
  }
  stop.store(true);
  for (std::thread& w : writers) w.join();
}

TEST_F(TelemetryTest, ChromeTraceExportIsWellFormed) {
  SpanTracer t;
  t.record("row_diff", "image", 50, 10);
  t.record("image_diff", "image", 0, 100);

  std::ostringstream os;
  write_chrome_trace(t, os);
  const JsonValue root = parse_json(os.str());

  const JsonValue& events = root.at("traceEvents");
  ASSERT_EQ(events.array.size(), 3u);  // metadata + 2 spans
  EXPECT_EQ(events.array[0].at("ph").string, "M");
  EXPECT_EQ(events.array[0].at("name").string, "process_name");
  // Complete events sorted by ts.
  EXPECT_EQ(events.array[1].at("ph").string, "X");
  EXPECT_EQ(events.array[1].at("name").string, "image_diff");
  EXPECT_EQ(events.array[2].at("name").string, "row_diff");
  EXPECT_LE(events.array[1].at("ts").number, events.array[2].at("ts").number);
  EXPECT_EQ(root.at("otherData").at("schema").string, "sysrle.trace.v1");
  EXPECT_DOUBLE_EQ(root.at("otherData").at("dropped_events").number, 0.0);
}

// -------------------------------------------------------------- bench report

TEST(BenchReport, RoundTripsAllSections) {
  BenchReport r("demo");
  r.set_param("mode", "full");
  r.set_param("seeds", std::int64_t{12});
  r.set_x("width", {128.0, 256.0});
  r.add_series("iterations", {5.0, 5.5});
  r.set_scalar("growth", 1.1);
  r.set_check("claim_holds", true);
  EXPECT_TRUE(r.all_checks_pass());

  std::ostringstream os;
  r.write(os);
  const JsonValue root = parse_json(os.str());
  EXPECT_EQ(root.at("schema").string, "sysrle.bench.v1");
  EXPECT_EQ(root.at("bench").string, "demo");
  EXPECT_EQ(root.at("params").at("mode").string, "full");
  EXPECT_DOUBLE_EQ(root.at("params").at("seeds").number, 12.0);
  EXPECT_EQ(root.at("x").at("name").string, "width");
  ASSERT_EQ(root.at("series").at("iterations").array.size(), 2u);
  EXPECT_DOUBLE_EQ(root.at("series").at("iterations").array[1].number, 5.5);
  EXPECT_DOUBLE_EQ(root.at("scalars").at("growth").number, 1.1);
  EXPECT_TRUE(root.at("checks").at("claim_holds").boolean);
}

TEST(BenchReport, SeriesLengthMismatchRejectedOnWrite) {
  BenchReport r("demo");
  r.set_x("width", {1.0, 2.0});
  r.add_series("bad", {1.0});
  std::ostringstream os;
  EXPECT_THROW(r.write(os), contract_error);
}

TEST(BenchReport, FailedCheckFlipsAllChecksPass) {
  BenchReport r("demo");
  r.set_check("a", true);
  r.set_check("b", false);
  EXPECT_FALSE(r.all_checks_pass());
}

}  // namespace
}  // namespace sysrle
