// Tests for the Figure-3-style execution trace renderer.

#include "systolic/trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace sysrle {
namespace {

using RunT = ::sysrle::Run;  // avoid collision with testing::Test::Run

std::vector<CellSnapshot> snap2(std::optional<RunT> s0, std::optional<RunT> b0,
                                std::optional<RunT> s1, std::optional<RunT> b1) {
  return {{s0, b0}, {s1, b1}};
}

TEST(Trace, EmptyRecorderRendersEmpty) {
  const TraceRecorder rec;
  EXPECT_EQ(rec.render(), "");
}

TEST(Trace, RecordsInitialAndSteps) {
  TraceRecorder rec;
  rec.record_initial(snap2(RunT{10, 3}, RunT{3, 4}, RunT{16, 2}, RunT{8, 5}));
  rec.record(1, MicroStep::kOrder,
             snap2(RunT{3, 4}, RunT{10, 3}, RunT{8, 5}, RunT{16, 2}));
  EXPECT_EQ(rec.frame_count(), 2u);
  const std::string s = rec.render();
  EXPECT_NE(s.find("Initial"), std::string::npos);
  EXPECT_NE(s.find("1.1"), std::string::npos);
  EXPECT_NE(s.find("(10,3)"), std::string::npos);
  EXPECT_NE(s.find("Cell0"), std::string::npos);
  EXPECT_NE(s.find("Cell1"), std::string::npos);
}

TEST(Trace, StepLabelsUseIterationDotStep) {
  TraceRecorder rec;
  rec.record_initial(snap2(std::nullopt, std::nullopt, std::nullopt,
                           std::nullopt));
  rec.record(2, MicroStep::kXor, snap2(RunT{1, 1}, std::nullopt, std::nullopt,
                                       std::nullopt));
  rec.record(2, MicroStep::kShift, snap2(RunT{1, 1}, std::nullopt, std::nullopt,
                                         std::nullopt));
  const std::string s = rec.render(false);
  EXPECT_NE(s.find("2.2"), std::string::npos);
  EXPECT_NE(s.find("2.3"), std::string::npos);
}

TEST(Trace, ElidesUnchangedFrames) {
  TraceRecorder rec;
  const auto state = snap2(RunT{1, 1}, std::nullopt, std::nullopt, std::nullopt);
  rec.record_initial(state);
  rec.record(1, MicroStep::kOrder, state);   // unchanged
  rec.record(1, MicroStep::kXor, state);     // unchanged
  const std::string elided = rec.render(true);
  const std::string full = rec.render(false);
  EXPECT_EQ(elided.find("1.1"), std::string::npos);
  EXPECT_NE(full.find("1.1"), std::string::npos);
  EXPECT_NE(full.find("1.2"), std::string::npos);
}

TEST(Trace, BigRegisterLineOnlyWhenOccupied) {
  TraceRecorder rec;
  rec.record_initial(snap2(RunT{1, 1}, std::nullopt, RunT{5, 2}, std::nullopt));
  const std::string s = rec.render();
  // Exactly two lines: header + the RegSmall line (no RegBig line).
  const auto lines = std::count(s.begin(), s.end(), '\n');
  EXPECT_EQ(lines, 2);
}

}  // namespace
}  // namespace sysrle
