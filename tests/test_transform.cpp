// Tests for compressed-domain geometric transforms, cross-checked against
// bitmap-space transforms.

#include "rle/transform.hpp"

#include <gtest/gtest.h>

#include "bitmap/convert.hpp"
#include "common/assert.hpp"
#include "rle/encode.hpp"
#include "test_util.hpp"
#include "workload/generator.hpp"
#include "workload/rng.hpp"

namespace sysrle {
namespace {

using sysrle::testing::random_row;

TEST(Transform, ShiftRowBothDirectionsAndClip) {
  const RleRow row{{0, 3}, {8, 2}};
  EXPECT_EQ(shift_row(row, 5, 10), (RleRow{{5, 3}}));          // right, clip
  EXPECT_EQ(shift_row(row, -2, 10), (RleRow{{0, 1}, {6, 2}})); // left, clip
  EXPECT_EQ(shift_row(row, 0, 10), row);
  EXPECT_TRUE(shift_row(row, 100, 10).empty());
  EXPECT_TRUE(shift_row(row, -100, 10).empty());
}

TEST(Transform, CropRowWindows) {
  const RleRow row = encode_bitstring("0111001100");
  EXPECT_EQ(crop_row(row, 0, 10), row);
  EXPECT_EQ(crop_row(row, 2, 5), encode_bitstring("11001"));
  EXPECT_EQ(crop_row(row, 4, 3), encode_bitstring("001"));
  EXPECT_TRUE(crop_row(row, 4, 0).empty());
  EXPECT_THROW(crop_row(row, -1, 2), contract_error);
}

TEST(Transform, ReflectRowIsInvolution) {
  Rng rng(31);
  for (int trial = 0; trial < 30; ++trial) {
    const pos_t width = rng.uniform(1, 200);
    const RleRow row = random_row(rng, width, 0.4);
    const RleRow reflected = reflect_row(row, width);
    EXPECT_EQ(reflect_row(reflected, width), row);
    EXPECT_EQ(reflected.foreground_pixels(), row.foreground_pixels());
    // Reference through strings.
    std::string s = decode_bitstring(row, width);
    std::reverse(s.begin(), s.end());
    EXPECT_EQ(decode_bitstring(reflected, width), s);
  }
}

TEST(Transform, ConcatRows) {
  const RleRow left = encode_bitstring("110");
  const RleRow right = encode_bitstring("011");
  EXPECT_EQ(concat_rows(left, 3, right), encode_bitstring("110011"));
  // Runs touching across the seam stay representable (adjacent runs).
  const RleRow l2 = encode_bitstring("011");
  const RleRow r2 = encode_bitstring("110");
  const RleRow joined = concat_rows(l2, 3, r2);
  EXPECT_EQ(joined.canonical(), encode_bitstring("011110"));
}

TEST(Transform, CropImageMatchesBitmapCrop) {
  Rng rng(33);
  RowGenParams p;
  p.width = 120;
  const RleImage img = generate_image(rng, 40, p);
  const RleImage cropped = crop_image(img, 10, 5, 60, 20);
  EXPECT_EQ(cropped.width(), 60);
  EXPECT_EQ(cropped.height(), 20);
  const BitmapImage full = rle_to_bitmap(img);
  const BitmapImage sub = rle_to_bitmap(cropped);
  for (pos_t y = 0; y < 20; ++y)
    for (pos_t x = 0; x < 60; ++x)
      ASSERT_EQ(sub.get(x, y), full.get(x + 10, y + 5)) << x << ',' << y;
  EXPECT_THROW(crop_image(img, 100, 0, 60, 20), contract_error);
}

TEST(Transform, ReflectAndFlipImage) {
  Rng rng(34);
  RowGenParams p;
  p.width = 64;
  const RleImage img = generate_image(rng, 10, p);
  const RleImage h = reflect_image_horizontal(img);
  const RleImage v = flip_image_vertical(img);
  EXPECT_EQ(reflect_image_horizontal(h), img);
  EXPECT_EQ(flip_image_vertical(v), img);
  EXPECT_EQ(v.row(0), img.row(9));
  EXPECT_EQ(h.row(3), reflect_row(img.row(3), 64));
}

TEST(Transform, TransposeMatchesBitmapTranspose) {
  Rng rng(35);
  for (int trial = 0; trial < 10; ++trial) {
    const pos_t w = rng.uniform(1, 80);
    const pos_t h = rng.uniform(1, 80);
    BitmapImage bmp(w, h);
    for (pos_t y = 0; y < h; ++y)
      for (pos_t x = 0; x < w; ++x)
        if (rng.bernoulli(0.35)) bmp.set(x, y, true);
    const RleImage img = bitmap_to_rle(bmp);
    const RleImage t = transpose_image(img);
    ASSERT_EQ(t.width(), h);
    ASSERT_EQ(t.height(), w);
    const BitmapImage tb = rle_to_bitmap(t);
    for (pos_t y = 0; y < h; ++y)
      for (pos_t x = 0; x < w; ++x)
        ASSERT_EQ(tb.get(y, x), bmp.get(x, y))
            << trial << ": " << x << ',' << y;
  }
}

TEST(Transform, TransposeIsInvolution) {
  Rng rng(36);
  RowGenParams p;
  p.width = 100;
  const RleImage img = generate_image(rng, 37, p);
  EXPECT_EQ(transpose_image(transpose_image(img)), img);
}

TEST(Transform, TransposeEmptyImage) {
  const RleImage img(5, 3);
  const RleImage t = transpose_image(img);
  EXPECT_EQ(t.width(), 3);
  EXPECT_EQ(t.height(), 5);
  EXPECT_EQ(t.stats().foreground_pixels, 0);
}

}  // namespace
}  // namespace sysrle
