// Tests for the systolic union (OR) machine extension and the on-array
// compaction built on it.

#include "core/union_variant.hpp"

#include <gtest/gtest.h>

#include "rle/encode.hpp"
#include "rle/ops.hpp"
#include "test_util.hpp"
#include "workload/rng.hpp"

namespace sysrle {
namespace {

using RunT = ::sysrle::Run;  // avoid collision with testing::Test::Run

using sysrle::testing::random_row;

TEST(SystolicOr, BasicCases) {
  const RleRow a = encode_bitstring("1100");
  const RleRow b = encode_bitstring("0110");
  EXPECT_EQ(systolic_or(a, b).output.canonical(), encode_bitstring("1110"));
  EXPECT_TRUE(systolic_or(RleRow{}, RleRow{}).output.empty());
  EXPECT_EQ(systolic_or(a, RleRow{}).output, a);
  EXPECT_EQ(systolic_or(RleRow{}, b).output, b);
  EXPECT_EQ(systolic_or(a, a).output, a);
}

TEST(SystolicOr, CoveredRunIsAbsorbed) {
  // A run of b entirely inside a longer run of a that settles to its left —
  // the gather sweep must still produce valid, correct output.
  const RleRow a{{0, 10}};
  const RleRow b{{2, 2}, {5, 2}};
  const UnionResult r = systolic_or(a, b);
  EXPECT_EQ(r.output.canonical(), (RleRow{{0, 10}}));
}

TEST(SystolicOr, MatchesParitySweepOnRandomInputs) {
  Rng rng(881);
  for (int trial = 0; trial < 120; ++trial) {
    const pos_t width = rng.uniform(1, 250);
    const RleRow a = random_row(rng, width, rng.uniform01());
    const RleRow b = random_row(rng, width, rng.uniform01());
    const UnionResult r = systolic_or(a, b);
    ASSERT_EQ(r.output.canonical(), or_rows(a, b)) << "trial " << trial;
    ASSERT_LE(r.counters.iterations, a.run_count() + b.run_count());
  }
}

TEST(SystolicOr, ExhaustiveWidth6) {
  for (unsigned va = 0; va < 64; ++va) {
    std::string sa(6, '0'), sb(6, '0');
    for (int i = 0; i < 6; ++i)
      if (va & (1u << i)) sa[static_cast<std::size_t>(i)] = '1';
    const RleRow a = encode_bitstring(sa);
    for (unsigned vb = 0; vb < 64; ++vb) {
      for (int i = 0; i < 6; ++i)
        sb[static_cast<std::size_t>(i)] = (vb & (1u << i)) ? '1' : '0';
      const RleRow b = encode_bitstring(sb);
      ASSERT_EQ(systolic_or(a, b).output.canonical(), or_rows(a, b))
          << sa << " | " << sb;
    }
  }
}

TEST(SystolicOr, HandlesNonCanonicalInputs) {
  const RleRow a{{0, 3}, {3, 2}};   // adjacent input runs
  const RleRow b{{10, 2}};
  EXPECT_EQ(systolic_or(a, b).output.canonical(),
            (RleRow{{0, 5}, {10, 2}}));
}

TEST(SystolicCompact, AlreadyCanonicalIsZeroPasses) {
  const RleRow row{{0, 3}, {5, 2}};
  const CompactPassResult r = systolic_compact(row);
  EXPECT_EQ(r.passes, 0u);
  EXPECT_EQ(r.output, row);
}

TEST(SystolicCompact, MergesOneAdjacency) {
  const RleRow row{{0, 3}, {3, 4}};
  const CompactPassResult r = systolic_compact(row);
  EXPECT_EQ(r.output, (RleRow{{0, 7}}));
  EXPECT_EQ(r.passes, 1u);
}

TEST(SystolicCompact, LongChainTakesLogPasses) {
  // 64 mutually adjacent unit runs -> one run; passes <= ceil(log2 64)+1.
  RleRow chain;
  for (pos_t i = 0; i < 64; ++i) chain.push_back(RunT{i, 1});
  const CompactPassResult r = systolic_compact(chain);
  EXPECT_EQ(r.output, (RleRow{{0, 64}}));
  EXPECT_GE(r.passes, 2u);
  EXPECT_LE(r.passes, 7u);
}

TEST(SystolicCompact, MixedChainsAndGaps) {
  Rng rng(883);
  for (int trial = 0; trial < 60; ++trial) {
    // Random row, then split runs into unit fragments to force adjacency.
    const pos_t width = rng.uniform(2, 150);
    const RleRow base = random_row(rng, width, 0.5);
    RleRow fragmented;
    for (const RunT& r : base)
      for (pos_t p = r.start; p <= r.end(); ++p)
        fragmented.push_back(RunT{p, 1});
    const CompactPassResult r = systolic_compact(fragmented);
    ASSERT_EQ(r.output, base.canonical()) << "trial " << trial;
    ASSERT_TRUE(r.output.is_canonical());
  }
}

TEST(SystolicCompact, CountersAccumulateAcrossPasses) {
  RleRow chain;
  for (pos_t i = 0; i < 16; ++i) chain.push_back(RunT{i * 2, 2});
  // All adjacent (each run of 2 touches the next at even offsets).
  const CompactPassResult r = systolic_compact(chain);
  EXPECT_EQ(r.output, (RleRow{{0, 32}}));
  EXPECT_GT(r.counters.iterations, 0u);
  EXPECT_GT(r.counters.xors, 0u);  // hull merges happened
}

}  // namespace
}  // namespace sysrle
