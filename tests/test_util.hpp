#pragma once
// Shared helpers for the sysrle test suite.

#include <string>

#include "rle/encode.hpp"
#include "rle/rle_row.hpp"
#include "workload/rng.hpp"

namespace sysrle::testing {

/// Generates a random bitstring row of the given width and foreground
/// probability, returned in RLE form (canonical by construction).
inline RleRow random_row(Rng& rng, pos_t width, double density) {
  std::string bits(static_cast<std::size_t>(width), '0');
  for (auto& c : bits)
    if (rng.bernoulli(density)) c = '1';
  return encode_bitstring(bits);
}

/// Reference XOR through uncompressed strings — deliberately independent of
/// every compressed-domain code path under test.
inline RleRow reference_xor(const RleRow& a, const RleRow& b, pos_t width) {
  const std::string sa = decode_bitstring(a, width);
  const std::string sb = decode_bitstring(b, width);
  std::string out(static_cast<std::size_t>(width), '0');
  for (std::size_t i = 0; i < out.size(); ++i)
    out[i] = sa[i] != sb[i] ? '1' : '0';
  return encode_bitstring(out);
}

}  // namespace sysrle::testing
