#pragma once
// Shared helpers for the sysrle test suite.

#include <cctype>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "rle/encode.hpp"
#include "rle/rle_row.hpp"
#include "workload/rng.hpp"

namespace sysrle::testing {

/// Generates a random bitstring row of the given width and foreground
/// probability, returned in RLE form (canonical by construction).
inline RleRow random_row(Rng& rng, pos_t width, double density) {
  std::string bits(static_cast<std::size_t>(width), '0');
  for (auto& c : bits)
    if (rng.bernoulli(density)) c = '1';
  return encode_bitstring(bits);
}

/// Reference XOR through uncompressed strings — deliberately independent of
/// every compressed-domain code path under test.
inline RleRow reference_xor(const RleRow& a, const RleRow& b, pos_t width) {
  const std::string sa = decode_bitstring(a, width);
  const std::string sb = decode_bitstring(b, width);
  std::string out(static_cast<std::size_t>(width), '0');
  for (std::size_t i = 0; i < out.size(); ++i)
    out[i] = sa[i] != sb[i] ? '1' : '0';
  return encode_bitstring(out);
}

// ------------------------------------------------------------- JSON parsing
//
// Minimal strict JSON reader for validating the telemetry layer's output.
// Deliberately independent of JsonWriter (a shared serialiser cannot verify
// itself).  Throws std::runtime_error on malformed input.

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  bool is_null() const { return type == Type::kNull; }

  const JsonValue* find(const std::string& key) const {
    for (const auto& [k, v] : object)
      if (k == key) return &v;
    return nullptr;
  }

  const JsonValue& at(const std::string& key) const {
    const JsonValue* v = find(key);
    if (!v) throw std::runtime_error("json: missing key '" + key + "'");
    return *v;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error("json: " + why + " at offset " +
                             std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  JsonValue parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        JsonValue v;
        v.type = JsonValue::Type::kString;
        v.string = parse_string();
        return v;
      }
      case 't':
      case 'f': return parse_bool();
      case 'n': return parse_null();
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.type = JsonValue::Type::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.object.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.type = JsonValue::Type::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("dangling escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("short \\u escape");
          const std::string hex(text_.substr(pos_, 4));
          pos_ += 4;
          const unsigned long cp = std::strtoul(hex.c_str(), nullptr, 16);
          // Only the ASCII/control range is ever produced by json_escape.
          if (cp > 0x7f) fail("non-ASCII \\u escape unsupported");
          out += static_cast<char>(cp);
          break;
        }
        default: fail("bad escape");
      }
    }
  }

  JsonValue parse_bool() {
    JsonValue v;
    v.type = JsonValue::Type::kBool;
    if (text_.substr(pos_, 4) == "true") {
      v.boolean = true;
      pos_ += 4;
    } else if (text_.substr(pos_, 5) == "false") {
      v.boolean = false;
      pos_ += 5;
    } else {
      fail("bad literal");
    }
    return v;
  }

  JsonValue parse_null() {
    if (text_.substr(pos_, 4) != "null") fail("bad literal");
    pos_ += 4;
    return JsonValue{};
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E'))
      ++pos_;
    if (pos_ == start) fail("expected value");
    JsonValue v;
    v.type = JsonValue::Type::kNumber;
    const std::string num(text_.substr(start, pos_ - start));
    char* end = nullptr;
    v.number = std::strtod(num.c_str(), &end);
    if (end != num.c_str() + num.size()) fail("bad number");
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

/// Parses a complete JSON document (throws std::runtime_error on error).
inline JsonValue parse_json(std::string_view text) {
  return JsonParser(text).parse();
}

}  // namespace sysrle::testing
