// Tests for the untrusted run-sequence validator.

#include "rle/validate.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace sysrle {
namespace {

using RunT = ::sysrle::Run;  // avoid collision with testing::Test::Run

TEST(Validate, CleanSequence) {
  const std::vector<RunT> runs{{0, 3}, {5, 2}, {10, 1}};
  const auto report = validate_runs(runs);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.to_string(), "ok");
}

TEST(Validate, EmptySequenceIsClean) {
  EXPECT_TRUE(validate_runs({}).ok());
}

TEST(Validate, FlagsNonPositiveLength) {
  const std::vector<RunT> runs{{0, 0}};
  const auto report = validate_runs(runs);
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].issue, RowIssue::kNonPositiveLength);
  EXPECT_EQ(report.findings[0].run_index, 0u);
}

TEST(Validate, FlagsNegativeStart) {
  const std::vector<RunT> runs{{-2, 3}};
  const auto report = validate_runs(runs);
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].issue, RowIssue::kNegativeStart);
}

TEST(Validate, FlagsOutOfOrder) {
  const std::vector<RunT> runs{{10, 2}, {5, 2}};
  const auto report = validate_runs(runs);
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].issue, RowIssue::kOutOfOrder);
  EXPECT_EQ(report.findings[0].run_index, 1u);
}

TEST(Validate, FlagsOverlap) {
  const std::vector<RunT> runs{{5, 5}, {8, 2}};
  const auto report = validate_runs(runs);
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].issue, RowIssue::kOverlap);
}

TEST(Validate, FlagsWidthViolation) {
  const std::vector<RunT> runs{{8, 4}};
  ValidateOptions opts;
  opts.width = 10;
  const auto report = validate_runs(runs, opts);
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].issue, RowIssue::kExceedsWidth);
}

TEST(Validate, AdjacencyOnlyWhenCanonicalRequired) {
  const std::vector<RunT> runs{{0, 5}, {5, 2}};
  EXPECT_TRUE(validate_runs(runs).ok());
  ValidateOptions opts;
  opts.require_canonical = true;
  const auto report = validate_runs(runs, opts);
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].issue, RowIssue::kNotCanonical);
}

TEST(Validate, ReportsMultipleFindings) {
  const std::vector<RunT> runs{{-1, 0}, {5, 2}, {4, 2}};
  const auto report = validate_runs(runs);
  EXPECT_GE(report.findings.size(), 3u);
  EXPECT_FALSE(report.ok());
  EXPECT_NE(report.to_string(), "ok");
}

TEST(Validate, IssueNamesAreDistinct) {
  EXPECT_NE(to_string(RowIssue::kOverlap), to_string(RowIssue::kOutOfOrder));
  EXPECT_NE(to_string(RowIssue::kNonPositiveLength),
            to_string(RowIssue::kNegativeStart));
}

}  // namespace
}  // namespace sysrle
