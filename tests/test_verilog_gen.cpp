// Structural tests for the Verilog emitter (no RTL toolchain is assumed:
// the checks are textual — balanced constructs, declared-vs-used signals,
// parameter plumbing, and the Figure-1 testbench payload).

#include "systolic/verilog_gen.hpp"

#include <gtest/gtest.h>

#include <regex>
#include <string>

#include <algorithm>
#include <cstdint>
#include <optional>
#include <vector>

#include "common/assert.hpp"
#include "core/diff_cell.hpp"

namespace sysrle {
namespace {

using RunT = ::sysrle::Run;  // avoid collision with testing::Test::Run

/// Drops '//' comments so keyword counting sees only real code.
std::string strip_comments(const std::string& text) {
  std::string out;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t nl = text.find('\n', pos);
    const std::size_t line_end = nl == std::string::npos ? text.size() : nl + 1;
    std::string line = text.substr(pos, line_end - pos);
    const std::size_t comment = line.find("//");
    if (comment != std::string::npos) line = line.substr(0, comment) + "\n";
    out += line;
    pos = line_end;
  }
  return out;
}

std::size_t count_token(const std::string& text, const std::string& token) {
  // Word-boundary occurrences in code (comments stripped).
  const std::string code = strip_comments(text);
  const std::regex re("\\b" + token + "\\b");
  return static_cast<std::size_t>(std::distance(
      std::sregex_iterator(code.begin(), code.end(), re),
      std::sregex_iterator()));
}

TEST(VerilogGen, CellModuleBalancedAndParameterised) {
  VerilogOptions opt;
  opt.word_bits = 24;
  const std::string v = generate_cell_verilog(opt);
  EXPECT_EQ(count_token(v, "module"), count_token(v, "endmodule"));
  EXPECT_EQ(count_token(v, "begin"), count_token(v, "end"));
  EXPECT_NE(v.find("parameter W = 24"), std::string::npos);
  EXPECT_NE(v.find("sysrle_cell"), std::string::npos);
}

TEST(VerilogGen, CellImplementsTheFourAssignments) {
  const std::string v = generate_cell_verilog();
  // The step-2 datapath landmarks.
  EXPECT_NE(v.find("bs - 1"), std::string::npos);   // RegBig.start - 1
  EXPECT_NE(v.find("se + 1"), std::string::npos);   // oldSmallEnd + 1
  EXPECT_NE(v.find("be + 1"), std::string::npos);   // RegBig.end + 1
  // Step 1 landmarks: swap and promote.
  EXPECT_NE(v.find("swap"), std::string::npos);
  EXPECT_NE(v.find("promote"), std::string::npos);
  // The completion line is the inverted RegBig valid.
  EXPECT_NE(v.find("assign complete    = ~rb_valid;"), std::string::npos);
}

TEST(VerilogGen, DeclaredSignalsAreUsed) {
  const std::string v = generate_cell_verilog();
  // Every locally declared wire/reg must appear at least twice (declaration
  // plus at least one use).
  const std::regex decl(R"((?:wire|reg)\s+(?:signed\s+)?(?:\[[^\]]*\]\s*)?(\w+)\s*[;,=])");
  for (auto it = std::sregex_iterator(v.begin(), v.end(), decl);
       it != std::sregex_iterator(); ++it) {
    const std::string name = (*it)[1];
    EXPECT_GE(count_token(v, name), 2u) << "unused signal: " << name;
  }
}

TEST(VerilogGen, ArrayInstantiatesCellsAndReducesCompletion) {
  VerilogOptions opt;
  const std::string v = generate_array_verilog(opt, 12);
  EXPECT_NE(v.find("parameter N = 12"), std::string::npos);
  EXPECT_NE(v.find("generate"), std::string::npos);
  EXPECT_NE(v.find("sysrle_cell #(.W(W)) cell_i"), std::string::npos);
  EXPECT_NE(v.find("assign all_complete = &complete;"), std::string::npos);
  // Cell 0's RegBig input is tied off (the paper's input port I).
  EXPECT_NE(v.find("assign lane_valid[0] = 1'b0;"), std::string::npos);
  EXPECT_EQ(count_token(v, "module"), count_token(v, "endmodule"));
}

TEST(VerilogGen, TestbenchCarriesFigure1Payload) {
  const std::string v = generate_testbench_verilog({}, 10);
  // Image 1 runs as closed intervals.
  EXPECT_NE(v.find("load_run(0, 10, 12, 0)"), std::string::npos);
  EXPECT_NE(v.find("load_run(3, 27, 29, 0)"), std::string::npos);
  // Image 2 runs.
  EXPECT_NE(v.find("load_run(0, 3, 6, 1)"), std::string::npos);
  EXPECT_NE(v.find("load_run(4, 27, 30, 1)"), std::string::npos);
  // Expected-output comment (Figure 3 final state).
  EXPECT_NE(v.find("cell5 [30,30]"), std::string::npos);
  EXPECT_NE(v.find("$finish"), std::string::npos);
}

TEST(VerilogGen, CustomPrefixPropagates) {
  VerilogOptions opt;
  opt.module_prefix = "acme";
  EXPECT_NE(generate_cell_verilog(opt).find("module acme_cell"),
            std::string::npos);
  EXPECT_NE(generate_array_verilog(opt, 4).find("acme_cell #(.W(W))"),
            std::string::npos);
  EXPECT_NE(generate_testbench_verilog(opt, 8).find("acme_array"),
            std::string::npos);
}

// Independent transcription of the emitted cell equations, evaluated with
// the RTL's (W+1)-bit signed arithmetic, checked against DiffCell for every
// run pair (and lone-run/empty cases) in a small universe.  This is the
// functional leg of the RTL validation: the emitted equations and the
// simulator must describe the same machine.
struct RtlRegs {
  bool rs_valid = false, rb_valid = false;
  std::int64_t rs_start = 0, rs_end = 0, rb_start = 0, rb_end = 0;
};

RtlRegs rtl_step(RtlRegs r) {
  // step 1
  const bool both = r.rs_valid && r.rb_valid;
  const bool swap = both && (r.rs_start > r.rb_start ||
                             (r.rs_start == r.rb_start && r.rs_end > r.rb_end));
  const bool promote = !r.rs_valid && r.rb_valid;
  const bool o_small_valid = r.rs_valid || r.rb_valid;
  const std::int64_t o_small_start = (swap || promote) ? r.rb_start : r.rs_start;
  const std::int64_t o_small_end = (swap || promote) ? r.rb_end : r.rs_end;
  const bool o_big_valid = both;
  const std::int64_t o_big_start = swap ? r.rs_start : r.rb_start;
  const std::int64_t o_big_end = swap ? r.rs_end : r.rb_end;
  // step 2 (signed W+1 arithmetic: plain int64 here, values are tiny)
  const std::int64_t ss = o_small_start, se = o_small_end;
  const std::int64_t bs = o_big_start, be = o_big_end;
  const std::int64_t new_se = std::min(se, bs - 1);
  const std::int64_t max_seb = std::max(se + 1, bs);
  const std::int64_t new_bs = std::min(be + 1, max_seb);
  const std::int64_t new_be = std::max(se, be);
  RtlRegs out;
  out.rs_valid = o_big_valid ? (new_se >= ss) : o_small_valid;
  out.rs_start = o_small_start;
  out.rs_end = o_big_valid ? new_se : o_small_end;
  out.rb_valid = o_big_valid && (new_be >= new_bs);
  out.rb_start = o_big_valid ? new_bs : o_big_start;
  out.rb_end = o_big_valid ? new_be : o_big_end;
  return out;
}

TEST(VerilogGen, EmittedEquationsMatchDiffCellExhaustively) {
  auto check = [](std::optional<RunT> small, std::optional<RunT> big) {
    RtlRegs regs;
    if (small) {
      regs.rs_valid = true;
      regs.rs_start = small->start;
      regs.rs_end = small->end();
    }
    if (big) {
      regs.rb_valid = true;
      regs.rb_start = big->start;
      regs.rb_end = big->end();
    }
    const RtlRegs rtl = rtl_step(regs);

    DiffCell cell;
    cell.load_small(small);
    cell.load_big(big);
    cell.order();
    cell.xor_step();

    ASSERT_EQ(rtl.rs_valid, cell.reg_small().has_value());
    if (rtl.rs_valid) {
      ASSERT_EQ(rtl.rs_start, cell.reg_small()->start);
      ASSERT_EQ(rtl.rs_end, cell.reg_small()->end());
    }
    ASSERT_EQ(rtl.rb_valid, cell.reg_big().has_value());
    if (rtl.rb_valid) {
      ASSERT_EQ(rtl.rb_start, cell.reg_big()->start);
      ASSERT_EQ(rtl.rb_end, cell.reg_big()->end());
    }
  };

  constexpr pos_t kU = 8;  // universe width: all intervals within [0, 7]
  std::vector<std::optional<RunT>> values{std::nullopt};
  for (pos_t s = 0; s < kU; ++s)
    for (pos_t e = s; e < kU; ++e) values.push_back(RunT::from_bounds(s, e));
  for (const auto& small : values)
    for (const auto& big : values) check(small, big);
}

TEST(VerilogGen, RejectsBadOptions) {
  VerilogOptions opt;
  opt.word_bits = 1;
  EXPECT_THROW(generate_cell_verilog(opt), contract_error);
  opt.word_bits = 63;
  EXPECT_THROW(generate_cell_verilog(opt), contract_error);
  opt.word_bits = 20;
  opt.module_prefix = "";
  EXPECT_THROW(generate_cell_verilog(opt), contract_error);
  EXPECT_THROW(generate_array_verilog({}, 0), contract_error);
  EXPECT_THROW(generate_testbench_verilog({}, 5), contract_error);
}

}  // namespace
}  // namespace sysrle
