// Differential suite for the word-parallel sequential engine: every dispatch
// level available on the host must produce output bit-identical to the
// scalar oracle (canonicalized sequential_xor), the systolic machine, and
// the string-based reference, over random and adversarial rows.  The CI
// build matrix runs this file both with and without the AVX2 kernel
// compiled, so a lane-width bug cannot hide behind the build host's ISA.

#include "baseline/word_diff.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "baseline/sequential_diff.hpp"
#include "baseline/simd_dispatch.hpp"
#include "common/assert.hpp"
#include "core/systolic_diff.hpp"
#include "test_util.hpp"
#include "workload/generator.hpp"
#include "workload/rng.hpp"

namespace sysrle {
namespace {

using sysrle::testing::random_row;
using sysrle::testing::reference_xor;

/// All word levels (everything but kScalar) usable on this host.
std::vector<SimdLevel> word_levels() {
  std::vector<SimdLevel> out;
  for (const SimdLevel level : supported_simd_levels())
    if (level != SimdLevel::kScalar) out.push_back(level);
  return out;
}

/// Canonical XOR via the scalar oracle.
RleRow oracle(const RleRow& a, const RleRow& b) {
  RleRow out = sequential_xor(a, b).output;
  out.canonicalize();
  return out;
}

/// Restores the ambient dispatch level when a test overrides it.
class ScopedSimdLevel {
 public:
  explicit ScopedSimdLevel(SimdLevel level) : saved_(active_simd_level()) {
    set_simd_level(level);
  }
  ~ScopedSimdLevel() { set_simd_level(saved_); }

 private:
  SimdLevel saved_;
};

TEST(SimdDispatch, LevelNamesRoundTrip) {
  for (const SimdLevel level : {SimdLevel::kScalar, SimdLevel::kSwar64,
                                SimdLevel::kAvx2, SimdLevel::kNeon})
    EXPECT_EQ(parse_simd_level(to_string(level)), level);
  EXPECT_THROW(parse_simd_level("avx512"), contract_error);
  EXPECT_THROW(parse_simd_level(""), contract_error);
}

TEST(SimdDispatch, ScalarAndSwarAlwaysSupported) {
  EXPECT_TRUE(simd_level_supported(SimdLevel::kScalar));
  EXPECT_TRUE(simd_level_supported(SimdLevel::kSwar64));
  // The best level is never the oracle: scalar exists for differential
  // testing, not as a dispatch target of choice.
  EXPECT_NE(detect_best_simd_level(), SimdLevel::kScalar);
}

TEST(SimdDispatch, SetAndReadBack) {
  for (const SimdLevel level : supported_simd_levels()) {
    ScopedSimdLevel guard(level);
    EXPECT_EQ(active_simd_level(), level);
  }
}

TEST(SimdDispatch, RejectsUnsupportedLevel) {
  for (const SimdLevel level : {SimdLevel::kAvx2, SimdLevel::kNeon}) {
    if (!simd_level_supported(level)) {
      EXPECT_THROW(set_simd_level(level), contract_error);
    }
  }
}

// ---------------------------------------------------------------- identity

/// Adversarial row pairs targeting the packing/extraction boundaries.
std::vector<std::pair<RleRow, RleRow>> adversarial_pairs() {
  std::vector<std::pair<RleRow, RleRow>> out;
  // Runs ending exactly at 64-bit word boundaries.
  out.push_back({RleRow{{0, 64}}, RleRow{{32, 64}}});
  out.push_back({RleRow{{0, 64}, {128, 64}}, RleRow{{64, 64}}});
  // Runs starting exactly at word boundaries.
  out.push_back({RleRow{{64, 1}}, RleRow{{63, 2}}});
  out.push_back({RleRow{{64, 64}, {192, 64}}, RleRow{{64, 64}, {192, 64}}});
  // Single-pixel runs straddling word boundaries.
  out.push_back({RleRow{{63, 1}}, RleRow{{64, 1}}});
  out.push_back({RleRow{{63, 2}}, RleRow{{127, 2}}});
  // All-ones multi-word extents.
  out.push_back({RleRow{{0, 256}}, RleRow{{0, 256}}});
  out.push_back({RleRow{{0, 256}}, RleRow{}});
  out.push_back({RleRow{{0, 300}}, RleRow{{100, 100}}});
  // Empty rows and empty diffs.
  out.push_back({RleRow{}, RleRow{}});
  out.push_back({RleRow{{5, 3}}, RleRow{{5, 3}}});
  // Full-width-style runs with interior single-bit flips.
  out.push_back({RleRow{{0, 1000}}, RleRow{{0, 511}, {512, 488}}});
  // Far-apart sparse runs (exercises the sparse scalar fallback guard).
  out.push_back({RleRow{{0, 1}}, RleRow{{1000000, 1}}});
  out.push_back({RleRow{{3, 2}, {999999, 3}}, RleRow{{500000, 1}}});
  // Adjacent runs in the input (legal, non-canonical).
  out.push_back({RleRow{{0, 4}, {4, 4}}, RleRow{{2, 4}}});
  return out;
}

TEST(WordDiff, AdversarialRowsMatchOracleAtEveryLevel) {
  for (const auto& [a, b] : adversarial_pairs()) {
    const RleRow expected = oracle(a, b);
    for (const SimdLevel level : supported_simd_levels()) {
      ScopedSimdLevel guard(level);
      const SequentialDiffResult r = sequential_engine_xor(a, b);
      EXPECT_EQ(r.output, expected)
          << "level=" << to_string(level) << " a=" << a << " b=" << b;
      EXPECT_TRUE(r.output.is_canonical());
    }
  }
}

TEST(WordDiff, WordParallelCoreMatchesOracleDirectly) {
  // word_parallel_xor without the wrapper: non-empty rows at every word
  // level, including boundary-heavy shapes.
  WordDiffScratch scratch;
  for (const auto& [a, b] : adversarial_pairs()) {
    if (a.empty() || b.empty()) continue;
    const RleRow expected = oracle(a, b);
    for (const SimdLevel level : word_levels()) {
      const SequentialDiffResult r = word_parallel_xor(a, b, scratch, level);
      EXPECT_EQ(r.output, expected) << "level=" << to_string(level);
      EXPECT_GT(r.iterations, 0u);
    }
  }
}

TEST(WordDiff, RandomRowsMatchOracleSystolicAndReferenceAtEveryLevel) {
  Rng rng(9001);
  for (int trial = 0; trial < 200; ++trial) {
    const pos_t width = rng.uniform(1, 700);
    const RleRow a = random_row(rng, width, rng.uniform01());
    const RleRow b = random_row(rng, width, rng.uniform01());
    const RleRow expected = reference_xor(a, b, width);
    ASSERT_EQ(oracle(a, b), expected);
    ASSERT_EQ(systolic_xor(a, b).output.canonical(), expected);
    for (const SimdLevel level : supported_simd_levels()) {
      ScopedSimdLevel guard(level);
      EXPECT_EQ(sequential_engine_xor(a, b).output, expected)
          << "trial " << trial << " level=" << to_string(level);
    }
  }
}

TEST(WordDiff, GeneratedWorkloadPairsMatchAtEveryLevel) {
  // The bench workload generator (wide sparse rows + error injection),
  // i.e. the distribution θ was re-calibrated on.
  Rng rng(9002);
  RowGenParams rp;
  ErrorGenParams ep;
  for (int trial = 0; trial < 50; ++trial) {
    ep.error_fraction = rng.uniform01() * 0.3;
    const RowPairSample s = generate_pair(rng, rp, ep);
    const RleRow expected = oracle(s.first, s.second);
    for (const SimdLevel level : supported_simd_levels()) {
      ScopedSimdLevel guard(level);
      EXPECT_EQ(sequential_engine_xor(s.first, s.second).output, expected);
    }
  }
}

TEST(WordDiff, SparseGuardRoutesUltraSparseWideRowsToScalar) {
  // Two single-pixel runs a megapixel apart: the packed pass would scan
  // ~15k words for k1+k2 = 2 runs.  The engine must not pay that; its
  // iteration count stays within the scalar merge's Θ(k1+k2) regime.
  const RleRow a{{0, 1}};
  const RleRow b{{1000000, 1}};
  for (const SimdLevel level : word_levels()) {
    ScopedSimdLevel guard(level);
    const SequentialDiffResult r = sequential_engine_xor(a, b);
    EXPECT_EQ(r.output, oracle(a, b));
    EXPECT_LE(r.iterations, a.run_count() + b.run_count())
        << "sparse guard missing at level " << to_string(level);
  }
}

TEST(WordDiff, IterationsAreDeterministicAcrossThreads) {
  // The engine keeps thread_local scratch; the routing decision and the
  // iteration count depend only on the inputs, so concurrent use from many
  // threads must agree with the serial answer.
  Rng rng(9003);
  std::vector<std::pair<RleRow, RleRow>> pairs;
  for (int i = 0; i < 64; ++i) {
    const pos_t width = rng.uniform(1, 500);
    pairs.push_back(
        {random_row(rng, width, 0.4), random_row(rng, width, 0.4)});
  }
  std::vector<SequentialDiffResult> serial;
  for (const auto& [a, b] : pairs) serial.push_back(sequential_engine_xor(a, b));

  std::vector<SequentialDiffResult> parallel(pairs.size());
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t)
    workers.emplace_back([&, t] {
      for (std::size_t i = static_cast<std::size_t>(t); i < pairs.size();
           i += 4)
        parallel[i] = sequential_engine_xor(pairs[i].first, pairs[i].second);
    });
  for (auto& w : workers) w.join();

  for (std::size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_EQ(parallel[i].output, serial[i].output);
    EXPECT_EQ(parallel[i].iterations, serial[i].iterations);
  }
}

}  // namespace
}  // namespace sysrle
