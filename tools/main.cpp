// Entry point for the `sysrle` command-line tool; all logic lives in the
// testable sysrle_cli library.

#include <iostream>
#include <string>
#include <vector>

#include "cli/cli.hpp"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  return sysrle::run_cli(args, std::cout, std::cerr);
}
